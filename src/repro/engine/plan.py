"""Compiled release plans: design once, release forever.

Every workflow in this library has the same two-phase shape the paper
prescribes — *design* a constrained mechanism once (an LP solve or a closed
form), then *apply* it to many counts.  Before this module the apply phase
was re-implemented by each caller (the serving session, the histogram
releaser, the empirical evaluator, the experiment runners), each resolving
the mechanism, warming its sampling state and post-processing its output in
its own way.

:class:`ReleasePlan` is the compiled artifact those callers now share.  A
plan owns

* the **resolved mechanism** (any representation — dense, closed-form or
  sparse) plus the :class:`~repro.core.selector.SelectorDecision` that
  produced it when known;
* **eagerly prepared sampling state** — :meth:`prepare` runs the
  representation-appropriate warm-up (the dense backend's ``(n + 1)^2``
  column-CDF table via :meth:`~repro.core.mechanism.Mechanism
  .prepare_sampling`; closed forms and sparse mechanisms warm per-column
  caches lazily by design);
* **privacy metadata** — :attr:`alpha_cost`, the α charged against a
  :class:`~repro.privacy.PrivacyAccountant` per executed release;
* an optional **post-processing hook** applied to every released array
  (e.g. the estimation utilities of :mod:`repro.eval.estimation` or
  histogram prefix sums), plus convenience estimators.

Plans are cheap, picklable (their mechanisms are) and reusable: compile one
per distinct design request and execute it as many times as traffic
demands, either directly (:meth:`execute` / :meth:`execute_tiled` /
:meth:`evaluate`) or through a :class:`~repro.engine.executor
.StreamExecutor` for chunked, budget-guarded streams.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.losses import Objective
from repro.core.mechanism import Mechanism
from repro.core.properties import StructuralProperty
from repro.core.selector import SelectorDecision, choose_mechanism
from repro.lp.solver import DEFAULT_BACKEND
from repro.privacy import BudgetExceededError, PrivacyAccountant

PropertiesLike = Union[None, str, Iterable[Union[str, StructuralProperty]]]

#: Signature of a plan's post-processing hook: released counts in, processed
#: array out.  Receives exactly the array the sampler produced — 1-D for
#: :meth:`ReleasePlan.execute`, ``(repetitions, batch)`` for
#: :meth:`ReleasePlan.execute_tiled`, and *one chunk at a time* under a
#: :class:`~repro.engine.executor.StreamExecutor` (so only elementwise
#: hooks commute with chunking; apply cumulative transforms such as prefix
#: sums to the assembled result instead).
PostProcess = Callable[[np.ndarray], np.ndarray]


def _check_chargeable_alpha(alpha: float) -> float:
    """Refuse a non-positive α: its privacy cost is unbounded (ε = ∞)."""
    if not (0.0 < alpha <= 1.0):
        raise BudgetExceededError(
            f"release at alpha={alpha:g} has unbounded privacy cost (epsilon = inf); "
            "an accountant-guarded path cannot serve it"
        )
    return float(alpha)


def charge_release(
    accountant: Optional[PrivacyAccountant],
    alpha: float,
    label: str = "release",
    releases: int = 1,
) -> None:
    """Charge ``releases`` sequential α-DP releases against an accountant.

    The single budget-enforcement point every engine-routed path uses
    (directly, or through :func:`charge_release_group` for mixed batches):
    ``None`` accountant means unmetered (free) serving; a non-positive α has
    unbounded privacy cost (ε = ∞) and is always refused.  Raises
    :class:`~repro.privacy.BudgetExceededError` *before* the caller draws
    any samples — charging precedes sampling everywhere in the engine.
    """
    if accountant is None:
        return
    alpha = _check_chargeable_alpha(alpha)
    if int(releases) != releases or releases < 1:
        raise ValueError("releases must be a positive integer")
    composed = alpha ** int(releases)
    if not accountant.can_release(composed):
        raise BudgetExceededError(
            f"{releases} release(s) at alpha={alpha:g} would push the guarantee below "
            f"the target {accountant.alpha_target:g} "
            f"(already spent alpha={accountant.spent_alpha():g})"
        )
    accountant.record(composed, label=label)


def charge_release_group(
    accountant: Optional[PrivacyAccountant],
    releases: Sequence[Tuple[float, str]],
) -> None:
    """All-or-nothing charge of several α-DP releases served together.

    The whole group (a mixed serving batch: one ``(alpha, label)`` entry
    per about-to-execute bucket) is checked against the budget *before*
    anything is recorded, so a refusal leaves the accountant untouched and
    the caller has drawn nothing.  On success each release is recorded
    individually, preserving per-bucket history labels.
    """
    if accountant is None or not releases:
        return
    composed = 1.0
    for alpha, _ in releases:
        composed *= _check_chargeable_alpha(alpha)
    if not accountant.can_release(composed):
        raise BudgetExceededError(
            f"serving this request (composed alpha={composed:g}) would push the "
            f"guarantee below the target {accountant.alpha_target:g} "
            f"(already spent alpha={accountant.spent_alpha():g})"
        )
    for alpha, label in releases:
        accountant.record(alpha, label=label)


class ReleasePlan:
    """A compiled, reusable recipe for releasing counts through one design.

    Build one with :meth:`compile` (resolve a ``(n, alpha, properties,
    objective)`` design request, optionally through a
    :class:`~repro.serving.cache.DesignCache`) or :meth:`from_mechanism`
    (wrap an already-built mechanism).  Construction eagerly prepares the
    representation's sampling state, so the first executed batch pays no
    warm-up cost.

    Parameters
    ----------
    mechanism:
        The resolved mechanism the plan releases through.
    decision:
        The Figure-5 :class:`~repro.core.selector.SelectorDecision` that
        produced the mechanism, when the plan came from a design request.
    alpha_cost:
        The α charged per executed release against a
        :class:`~repro.privacy.PrivacyAccountant`.  Defaults to the
        mechanism's design α (falling back to its measured
        :meth:`~repro.core.mechanism.Mechanism.max_alpha` when the design α
        is unknown).
    postprocess:
        Optional hook applied to every released array before it is returned
        (estimation, prefix sums, clamping, …).
    key:
        The canonical design-cache key, when the plan was compiled through
        a cache.
    prepare:
        Run the sampling warm-up at construction (default).  Pass ``False``
        when compiling many plans whose first use is far away.
    """

    #: Class-level count of :class:`ReleasePlan` objects constructed in this
    #: process — design requests resolved by :meth:`compile` *and* existing
    #: mechanisms wrapped by :meth:`from_mechanism` (e.g. one per sweep
    #: evaluation task).  Snapshot it around a code path to measure how many
    #: plans the engine built for it, in the style of
    #: :attr:`Mechanism.densifications`.
    compilations = 0

    def __init__(
        self,
        mechanism: Mechanism,
        decision: Optional[SelectorDecision] = None,
        alpha_cost: Optional[float] = None,
        postprocess: Optional[PostProcess] = None,
        key: Optional[str] = None,
        prepare: bool = True,
    ) -> None:
        self.mechanism = mechanism
        self.decision = decision
        if alpha_cost is None:
            alpha_cost = mechanism.alpha if mechanism.alpha is not None else mechanism.max_alpha()
        self.alpha_cost = float(alpha_cost)
        if not (0.0 <= self.alpha_cost <= 1.0):
            raise ValueError("alpha_cost must lie in [0, 1]")
        self.postprocess = postprocess
        self.key = key
        self.prepared = False
        # Execution counters (plan-level stats surfaced by describe()).
        self.executions = 0
        self.records_released = 0
        ReleasePlan.compilations += 1
        if prepare:
            self.prepare()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def compile(
        cls,
        n: int,
        alpha: float,
        properties: PropertiesLike = (),
        objective: Optional[Objective] = None,
        backend: str = DEFAULT_BACKEND,
        cache: Optional[Any] = None,
        representation: str = "auto",
        postprocess: Optional[PostProcess] = None,
    ) -> "ReleasePlan":
        """Resolve a design request into an executable plan.

        The Figure-5 selector answers the request (through ``cache`` when
        one is supplied, so repeated compilations never re-solve an LP) and
        the resulting mechanism is wrapped with its decision, design-cache
        key and per-release α cost.
        """
        mechanism, decision = choose_mechanism(
            n,
            alpha,
            properties=properties,
            objective=objective,
            backend=backend,
            cache=cache,
            representation=representation,
        )
        return cls(
            mechanism,
            decision=decision,
            alpha_cost=float(alpha),
            postprocess=postprocess,
            key=mechanism.metadata.get("design_cache_key"),
        )

    @classmethod
    def from_mechanism(
        cls,
        mechanism: Mechanism,
        decision: Optional[SelectorDecision] = None,
        alpha_cost: Optional[float] = None,
        postprocess: Optional[PostProcess] = None,
        prepare: bool = True,
    ) -> "ReleasePlan":
        """Wrap an existing mechanism (any representation) as a plan."""
        return cls(
            mechanism,
            decision=decision,
            alpha_cost=alpha_cost,
            postprocess=postprocess,
            prepare=prepare,
        )

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Group size covered by the plan's mechanism."""
        return self.mechanism.n

    @property
    def branch(self) -> str:
        """The selector branch that produced the mechanism (name if unknown)."""
        if self.decision is not None:
            return self.decision.branch
        return self.mechanism.name

    def prepare(self) -> "ReleasePlan":
        """Eagerly run the representation's sampling warm-up (idempotent)."""
        if not self.prepared:
            self.mechanism.prepare_sampling()
            self.prepared = True
        return self

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def execute(
        self,
        true_counts: Union[Sequence[int], np.ndarray],
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Release one batch of counts (one independent draw per element).

        Bit-identical to :meth:`Mechanism.sample_batch` on the same
        generator — the plan adds preparation, counting and the optional
        post-processing hook, never a different sampler.
        """
        released = self.mechanism.sample_batch(true_counts, rng=rng)
        self.executions += 1
        self.records_released += int(released.shape[0])
        if self.postprocess is not None:
            released = np.asarray(self.postprocess(released))
        return released

    def execute_with_uniforms(
        self,
        true_counts: Union[Sequence[int], np.ndarray],
        uniforms: np.ndarray,
    ) -> np.ndarray:
        """Release one batch from caller-supplied uniforms (engine hot path).

        Bit-identical to :meth:`execute` whenever ``uniforms`` is
        ``rng.random(len(true_counts))`` from the same generator state; the
        :class:`~repro.engine.executor.StreamExecutor` uses this to draw one
        uniform block covering several chunks and release each chunk from
        its slice.  Counting and the post-processing hook behave exactly as
        in :meth:`execute`.
        """
        released = self.mechanism.sample_with_uniforms(true_counts, uniforms)
        self.executions += 1
        self.records_released += int(released.shape[0])
        if self.postprocess is not None:
            released = np.asarray(self.postprocess(released))
        return released

    def execute_tiled(
        self,
        true_counts: Union[Sequence[int], np.ndarray],
        repetitions: int,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Release the same batch ``repetitions`` times in one vectorised call.

        Delegates to :meth:`Mechanism.sample_tiled`, so row ``r`` is
        bit-identical to the ``r``-th of ``repetitions`` sequential
        :meth:`execute` calls on the same generator.
        """
        released = self.mechanism.sample_tiled(true_counts, repetitions, rng=rng)
        self.executions += 1
        self.records_released += int(released.size)
        if self.postprocess is not None:
            released = np.asarray(self.postprocess(released))
        return released

    def evaluate(
        self,
        data,
        group_size: Optional[int] = None,
        repetitions: int = 30,
        metrics=None,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
    ):
        """Empirically evaluate the plan's mechanism on a workload.

        Thin adapter over :func:`repro.eval.empirical.evaluate_mechanism`
        (deferred import — the evaluator itself draws through this plan).
        """
        from repro.eval.empirical import evaluate_mechanism

        return evaluate_mechanism(
            self,
            data,
            group_size=group_size,
            repetitions=repetitions,
            metrics=metrics,
            rng=rng,
            seed=seed,
        )

    def charge(
        self,
        accountant: Optional[PrivacyAccountant],
        releases: int = 1,
        label: str = "",
    ) -> None:
        """Charge ``releases`` executions of this plan against an accountant.

        Raises :class:`~repro.privacy.BudgetExceededError` (and records
        nothing) when the budget cannot cover them; call *before* sampling.
        """
        charge_release(
            accountant,
            self.alpha_cost,
            label=label or f"{self.mechanism.name} release",
            releases=releases,
        )

    # ------------------------------------------------------------------ #
    # Estimation conveniences (the "downstream processing" hooks)
    # ------------------------------------------------------------------ #
    def estimate_true_histogram(self, released_counts, method: str = "least_squares") -> np.ndarray:
        """Invert the mechanism on released counts (see :mod:`repro.eval.estimation`)."""
        from repro.eval.estimation import estimate_true_histogram

        return estimate_true_histogram(self.mechanism, released_counts, method=method)

    def debias_released_mean(self, released_counts) -> float:
        """Bias-corrected mean true count from released counts."""
        from repro.eval.estimation import debias_released_mean

        return debias_released_mean(self.mechanism, released_counts)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Any]:
        """Plan-level execution counters and design provenance."""
        return {
            "mechanism": self.mechanism.name,
            "representation": self.mechanism.representation,
            "n": self.n,
            "branch": self.branch,
            "alpha_cost": self.alpha_cost,
            "prepared": self.prepared,
            "executions": self.executions,
            "records_released": self.records_released,
            "storage_bytes": self.mechanism.storage_bytes(),
        }

    def descriptor(self) -> Dict[str, Any]:
        """The plan's identity as a plan-registry row (indexed columns).

        Mirrors :func:`repro.serving.registry.parse_design_key` applied to
        the plan's design-cache key, so a plan can be matched to — or looked
        up in — a :class:`~repro.serving.registry.PlanRegistry` without
        reconstructing the request.  ``None`` when the plan was built from a
        bare mechanism with no cache key (nothing to look up).
        """
        if self.key is None:
            return {"key": None}
        from repro.serving.registry import parse_design_key

        fields = parse_design_key(self.key) or {}
        descriptor: Dict[str, Any] = {"key": self.key}
        descriptor.update(fields)
        descriptor["warm_started"] = bool(
            self.mechanism.metadata.get("lp_warm_started", False)
        )
        return descriptor

    def describe(self) -> str:
        """One-line summary used by the CLI's ``--stats`` output."""
        return (
            f"plan[{self.mechanism.name}/{self.mechanism.representation} "
            f"n={self.n} branch={self.branch} alpha_cost={self.alpha_cost:g} "
            f"executions={self.executions} records={self.records_released}]"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReleasePlan(mechanism={self.mechanism.name!r}, n={self.n}, "
            f"representation={self.mechanism.representation!r}, "
            f"alpha_cost={self.alpha_cost:g})"
        )
