"""The release engine: compiled plans + streaming executors.

The paper's workflow is two-phase — design a constrained mechanism once,
then apply it to many counts — and every layer of this repository used to
re-implement the second phase for itself.  This package is the shared
implementation:

* :class:`~repro.engine.plan.ReleasePlan` — a compiled, reusable release
  recipe: resolved mechanism + eagerly-prepared sampling state + privacy
  cost + optional post-processing hooks.  Built by
  :meth:`~repro.engine.plan.ReleasePlan.compile` (design request, optionally
  through a :class:`~repro.serving.cache.DesignCache`) or
  :meth:`~repro.engine.plan.ReleasePlan.from_mechanism`.
* :class:`~repro.engine.executor.StreamExecutor` — runs a plan over an
  arbitrary count stream in fixed-size chunks with bounded memory,
  bit-identical to the one-shot path in its serial discipline, with
  optional process fan-out in its seeded discipline, and charging every
  chunk against a :class:`~repro.privacy.PrivacyAccountant` *before*
  sampling.

The serving session, histogram releaser, empirical evaluator and the
experiment sweeps are all thin adapters over these two classes; see
``docs/architecture.md`` for the plan lifecycle diagram.
"""

# Import order matters: ``faults`` (stdlib-only) must initialise before
# ``durability`` (which uses it), which must initialise before ``executor``
# and ``stream_io`` (which use both) — otherwise a direct
# ``import repro.engine.durability`` would re-enter this package mid-import
# and find a partially initialised module.
from repro.engine.faults import FaultInjector, InjectedCrash
from repro.engine.durability import (
    AccountantLedger,
    LedgerConfigError,
    LedgerCorruptionError,
    LedgerError,
    ResumeState,
)
from repro.engine.executor import (
    DEFAULT_CHUNK_SIZE,
    ExecutorStats,
    StreamExecutor,
    iter_count_chunks,
)
from repro.engine.plan import ReleasePlan, charge_release, charge_release_group
from repro.engine.stream_io import NpyCountWriter, open_npy_counts

#: Convenience alias: ``compile_plan(...)`` reads naturally at call sites.
compile_plan = ReleasePlan.compile

__all__ = [
    "AccountantLedger",
    "DEFAULT_CHUNK_SIZE",
    "ExecutorStats",
    "FaultInjector",
    "InjectedCrash",
    "LedgerConfigError",
    "LedgerCorruptionError",
    "LedgerError",
    "NpyCountWriter",
    "ReleasePlan",
    "ResumeState",
    "StreamExecutor",
    "charge_release",
    "charge_release_group",
    "compile_plan",
    "iter_count_chunks",
    "open_npy_counts",
]
