"""Streaming execution of a :class:`~repro.engine.plan.ReleasePlan`.

A serving deployment does not hold a day of traffic in memory: counts
arrive as a stream (a socket, a file, a generator) and must be released in
bounded memory.  :class:`StreamExecutor` runs a compiled plan over an
arbitrary iterable of counts — scalars, arrays, or a mix of batches — in
fixed-size chunks, with two stream disciplines:

**Shared-stream (serial)** — :meth:`StreamExecutor.stream` /
:meth:`StreamExecutor.run` consume one shared generator.  Because a numpy
``Generator`` fills a large array with exactly the draws successive smaller
requests would produce, the chunked output is *bit-identical to the
one-shot path* (``plan.execute`` over the concatenated counts) regardless
of chunk size.  This is the default, and what the ``serve-stream`` CLI uses
when no worker fan-out is requested.

**Per-chunk substreams (seeded)** — :meth:`StreamExecutor.stream_seeded` /
:meth:`StreamExecutor.run_seeded` derive one child seed per chunk from a
root :class:`numpy.random.SeedSequence`, drawn in serial chunk order before
any sampling happens — the seed discipline of :mod:`repro.eval.sweep`.
Chunks are then independent, so they can fan out across worker processes:
the released stream is identical for every ``max_workers`` value
(including in-process), though it differs from the shared-stream discipline
(and depends on ``chunk_size``).

Both disciplines charge every chunk against an optional
:class:`~repro.privacy.PrivacyAccountant` *before* sampling it: an
over-budget chunk raises :class:`~repro.privacy.BudgetExceededError`
without consuming a single uniform from the stream, so the refused release
never happened in any observable sense.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Union

import numpy as np

from repro.engine.plan import ReleasePlan
from repro.privacy import PrivacyAccountant

#: Default number of counts released per chunk.
DEFAULT_CHUNK_SIZE = 8192

CountStream = Union[Iterable[int], Iterable[np.ndarray], np.ndarray]


def iter_count_chunks(
    counts: CountStream, chunk_size: int, copy: bool = True
) -> Iterator[np.ndarray]:
    """Re-chunk an arbitrary count stream into fixed-size integer arrays.

    Accepts a numpy array (sliced without copying), an iterable of scalars,
    an iterable of array batches, or any mix of the latter two; every
    yielded chunk except possibly the last has exactly ``chunk_size``
    elements.  Memory is bounded by one chunk regardless of how the source
    batches its elements.

    With ``copy=False`` the iterable paths yield views into one
    preallocated internal buffer instead of copying it per chunk — the
    zero-copy mode the serial :class:`StreamExecutor` hot path uses.  Each
    yielded chunk is then only valid until the iterator is advanced; callers
    that retain chunks (e.g. a worker-pool submission window) must keep the
    default.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be a positive integer")
    if isinstance(counts, np.ndarray):
        flat = counts.ravel()
        for start in range(0, flat.shape[0], chunk_size):
            yield flat[start : start + chunk_size]
        return
    buffer = np.empty(chunk_size, dtype=np.int64)
    filled = 0
    for item in counts:
        batch = np.atleast_1d(np.asarray(item, dtype=np.int64)).ravel()
        offset = 0
        while batch.shape[0] - offset >= chunk_size - filled:
            take = chunk_size - filled
            buffer[filled:] = batch[offset : offset + take]
            yield buffer.copy() if copy else buffer
            filled = 0
            offset += take
        rest = batch.shape[0] - offset
        if rest:
            buffer[filled : filled + rest] = batch[offset:]
            filled += rest
    if filled:
        tail = buffer[:filled]
        yield tail.copy() if copy else tail


#: Per-worker mechanism installed by :func:`_init_chunk_worker`: the plan's
#: mechanism is pickled once per worker process (pool initializer), not once
#: per submitted chunk — a sparse/dense payload can be megabytes.
_WORKER_MECHANISM: Optional[object] = None


def _init_chunk_worker(mechanism) -> None:
    """Pool initializer: install the shared mechanism in this worker."""
    global _WORKER_MECHANISM
    _WORKER_MECHANISM = mechanism


def _sample_chunk_task(task):
    """Module-level worker for the seeded fan-out (picklable, as in sweep)."""
    chunk, seed = task
    return _WORKER_MECHANISM.sample_batch(chunk, rng=np.random.default_rng(seed))


@dataclass
class ExecutorStats:
    """Running totals for one :class:`StreamExecutor`."""

    chunks: int = 0
    records: int = 0


class StreamExecutor:
    """Run a compiled plan over a count stream in fixed-size, budgeted chunks.

    Parameters
    ----------
    plan:
        The :class:`~repro.engine.plan.ReleasePlan` to execute.
    chunk_size:
        Number of counts sampled per chunk; peak incremental memory is
        ``O(chunk_size)`` in the serial discipline.
    accountant:
        Optional :class:`~repro.privacy.PrivacyAccountant`.  Every chunk is
        charged ``plan.alpha_cost`` (sequential composition — conservative:
        successive chunks are assumed to observe the same individuals)
        *before* it is sampled; an over-budget chunk raises
        :class:`~repro.privacy.BudgetExceededError` without drawing.  Note
        the unit of charging is the chunk, so the budget buys
        ``releases_supported(alpha_cost, target)`` *chunks*: halving
        ``chunk_size`` halves the counts a fixed budget covers.  Released
        values are chunking-invariant; the spend is not — pick the chunk
        size to match what one "release" means in your deployment (e.g.
        one reporting period) rather than tuning it after the accountant
        is attached.
    max_workers:
        Worker processes for the seeded discipline (``None``/1 = in
        process).  The shared-stream discipline is inherently serial and
        rejects ``max_workers > 1``.
    """

    #: Number of chunks whose uniforms the unmetered serial path draws in
    #: one ``rng.random`` call.  Batching draws across chunks is
    #: bit-identical to per-chunk draws (a numpy generator fills a large
    #: array with exactly the draws successive smaller requests would
    #: produce); the same window doubles as the preallocated zero-copy read
    #: buffer, so peak incremental memory stays
    #: ``O(UNIFORM_BATCH_CHUNKS * chunk_size)``.
    UNIFORM_BATCH_CHUNKS = 8

    def __init__(
        self,
        plan: ReleasePlan,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        accountant: Optional[PrivacyAccountant] = None,
        max_workers: Optional[int] = None,
    ) -> None:
        if int(chunk_size) != chunk_size or chunk_size < 1:
            raise ValueError("chunk_size must be a positive integer")
        if max_workers is not None and int(max_workers) < 1:
            raise ValueError("max_workers must be a positive integer (or None)")
        self.plan = plan
        self.chunk_size = int(chunk_size)
        self.accountant = accountant
        self.max_workers = None if max_workers is None else int(max_workers)
        self.stats = ExecutorStats()

    # ------------------------------------------------------------------ #
    # Shared-stream discipline (bit-identical to one-shot)
    # ------------------------------------------------------------------ #
    def stream(
        self,
        counts: CountStream,
        rng: Optional[np.random.Generator] = None,
    ) -> Iterator[np.ndarray]:
        """Yield released chunks, consuming one shared generator serially.

        The concatenation of the yielded *released counts* is bit-identical
        to ``plan.execute(all_counts, rng=rng)`` on the same generator, for
        every chunk size.  A plan's post-processing hook is applied per
        chunk, so the equivalence extends through the hook only when it is
        elementwise (a cumulative hook such as prefix sums sees one chunk
        at a time here but the whole stream in the one-shot path).  Charges
        the accountant per chunk before sampling.

        Two internal regimes, identical in output: with an accountant
        attached, every chunk is validated, charged and sampled one at a
        time, so a refused chunk has consumed *nothing* from the generator;
        without one, chunks are read into a preallocated zero-copy window
        of :attr:`UNIFORM_BATCH_CHUNKS` chunks whose uniforms are drawn in
        a single ``rng.random`` call (the same uniforms, the same order —
        bit-identity is unaffected).  Counts in a window are validated
        before any of its uniforms are drawn.
        """
        if self.max_workers is not None and self.max_workers > 1:
            raise ValueError(
                "the shared-stream discipline is serial; use stream_seeded() "
                "for process fan-out"
            )
        rng = rng if rng is not None else np.random.default_rng()
        if self.accountant is not None:
            # Metered regime: the draw for chunk k must not happen before
            # chunk k's charge succeeds, so uniforms cannot be batched
            # across chunks here.
            for index, chunk in enumerate(iter_count_chunks(counts, self.chunk_size)):
                self._validate_chunk(chunk)
                self._charge(index, chunk.shape[0])
                released = self.plan.execute(chunk, rng=rng)
                self._count(chunk.shape[0])
                yield released
            return
        # Unmetered fast path: zero-copy window buffer + batched RNG draws.
        # The window is a whole multiple of chunk_size, so the yielded chunk
        # boundaries (and therefore stats and per-chunk post-processing)
        # are exactly those of the per-chunk regime.
        window = self.chunk_size * self.UNIFORM_BATCH_CHUNKS
        for superchunk in iter_count_chunks(counts, window, copy=False):
            self._validate_chunk(superchunk)
            uniforms = rng.random(superchunk.shape[0])
            for start in range(0, superchunk.shape[0], self.chunk_size):
                stop = min(start + self.chunk_size, superchunk.shape[0])
                released = self.plan.execute_with_uniforms(
                    superchunk[start:stop], uniforms[start:stop]
                )
                self._count(stop - start)
                yield released

    def run(
        self,
        counts: CountStream,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Release the whole stream and return the concatenated counts."""
        chunks = list(self.stream(counts, rng=rng))
        if not chunks:
            return np.empty(0, dtype=int)
        return np.concatenate(chunks)

    # ------------------------------------------------------------------ #
    # Seeded substream discipline (parallel == serial)
    # ------------------------------------------------------------------ #
    def stream_seeded(
        self,
        counts: CountStream,
        seed: Optional[int] = None,
    ) -> Iterator[np.ndarray]:
        """Yield released chunks, one child stream per chunk, optionally parallel.

        Child seeds are spawned from ``SeedSequence(seed)`` in serial chunk
        order before any sampling, so the output is identical for every
        ``max_workers`` value.  With ``max_workers > 1`` chunks are sampled
        in worker processes with a bounded submission window (memory stays
        ``O(max_workers * chunk_size)``); results are yielded in input
        order.  Accountant charging happens at submission time, still
        strictly before the chunk is sampled.
        """
        root = np.random.SeedSequence(seed)
        chunks = iter_count_chunks(counts, self.chunk_size)
        workers = self.max_workers if self.max_workers is not None else 1
        if workers <= 1:
            for index, chunk in enumerate(chunks):
                self._validate_chunk(chunk)
                self._charge(index, chunk.shape[0])
                child = root.spawn(1)[0]
                released = self.plan.mechanism.sample_batch(
                    chunk, rng=np.random.default_rng(child)
                )
                yield self._finish(chunk.shape[0], released)
            return
        from concurrent.futures import ProcessPoolExecutor

        window = 2 * workers
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_chunk_worker,
            initargs=(self.plan.mechanism,),
        ) as pool:
            pending: "deque" = deque()
            refusal: Optional[BaseException] = None
            for index, chunk in enumerate(chunks):
                try:
                    self._validate_chunk(chunk)
                    self._charge(index, chunk.shape[0])
                except Exception as error:
                    # Chunks already charged and submitted must still reach
                    # the caller — the budget was spent on them.  Drain the
                    # window, then re-raise the refusal.
                    refusal = error
                    break
                child = root.spawn(1)[0]
                pending.append(
                    (chunk.shape[0], pool.submit(_sample_chunk_task, (chunk, child)))
                )
                if len(pending) >= window:
                    size, future = pending.popleft()
                    yield self._finish(size, future.result())
            while pending:
                size, future = pending.popleft()
                yield self._finish(size, future.result())
            if refusal is not None:
                raise refusal

    def run_seeded(
        self,
        counts: CountStream,
        seed: Optional[int] = None,
    ) -> np.ndarray:
        """Release the whole stream under the seeded discipline."""
        chunks = list(self.stream_seeded(counts, seed=seed))
        if not chunks:
            return np.empty(0, dtype=int)
        return np.concatenate(chunks)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _validate_chunk(self, chunk: np.ndarray) -> None:
        """Reject out-of-range counts *before* the chunk is charged.

        The sampler would reject them anyway, but only after
        :meth:`_charge` has recorded the release — which would burn budget
        on a chunk that releases nothing.  Validation must precede
        charging, which must precede sampling.
        """
        if chunk.size and (chunk.min() < 0 or chunk.max() > self.plan.n):
            raise ValueError(
                f"counts must lie in [0, {self.plan.n}]; "
                f"got [{chunk.min()}, {chunk.max()}]"
            )

    def _charge(self, index: int, size: int) -> None:
        """Charge one chunk before sampling it (raises without drawing)."""
        self.plan.charge(
            self.accountant,
            label=f"{self.plan.mechanism.name} chunk {index} ({size} counts)",
        )

    def _count(self, size: int) -> None:
        self.stats.chunks += 1
        self.stats.records += int(size)

    def _finish(self, size: int, released: np.ndarray) -> np.ndarray:
        """Account for a seeded chunk and apply the plan's post-processing.

        The seeded path samples outside :meth:`ReleasePlan.execute` (worker
        processes must not mutate the parent's plan counters, and the
        post-processing hook need not be picklable), so counters and the
        hook are applied here in the parent.
        """
        self._count(size)
        self.plan.executions += 1
        self.plan.records_released += int(size)
        if self.plan.postprocess is not None:
            released = np.asarray(self.plan.postprocess(released))
        return released

    def describe(self) -> str:
        """One-line summary for CLI ``--stats`` output."""
        spent = "" if self.accountant is None else f" {self.accountant.describe()}"
        return (
            f"chunks={self.stats.chunks} records={self.stats.records} "
            f"chunk_size={self.chunk_size}{spent} {self.plan.describe()}"
        )
