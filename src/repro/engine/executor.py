"""Streaming execution of a :class:`~repro.engine.plan.ReleasePlan`.

A serving deployment does not hold a day of traffic in memory: counts
arrive as a stream (a socket, a file, a generator) and must be released in
bounded memory.  :class:`StreamExecutor` runs a compiled plan over an
arbitrary iterable of counts — scalars, arrays, or a mix of batches — in
fixed-size chunks, with two stream disciplines:

**Shared-stream (serial)** — :meth:`StreamExecutor.stream` /
:meth:`StreamExecutor.run` consume one shared generator.  Because a numpy
``Generator`` fills a large array with exactly the draws successive smaller
requests would produce, the chunked output is *bit-identical to the
one-shot path* (``plan.execute`` over the concatenated counts) regardless
of chunk size.  This is the default, and what the ``serve-stream`` CLI uses
when no worker fan-out is requested.

**Per-chunk substreams (seeded)** — :meth:`StreamExecutor.stream_seeded` /
:meth:`StreamExecutor.run_seeded` derive one child seed per chunk from a
root :class:`numpy.random.SeedSequence`, drawn in serial chunk order before
any sampling happens — the seed discipline of :mod:`repro.eval.sweep`.
Chunks are then independent, so they can fan out across worker processes:
the released stream is identical for every ``max_workers`` value
(including in-process), though it differs from the shared-stream discipline
(and depends on ``chunk_size``).

Both disciplines charge every chunk against an optional
:class:`~repro.privacy.PrivacyAccountant` *before* sampling it: an
over-budget chunk raises :class:`~repro.privacy.BudgetExceededError`
without consuming a single uniform from the stream, so the refused release
never happened in any observable sense.

Crash-safety (PR 7) extends the seeded discipline in two directions:

* **Durable accounting + resume** — attach an
  :class:`~repro.engine.durability.AccountantLedger` instead of a bare
  accountant and every charge is fsync'd to a write-ahead log before
  sampling; :meth:`stream_durable` then skips chunks the ledger records as
  already served (verifying the skipped input against the charged
  checksum), re-deriving the exact per-chunk substreams, so a restarted
  run continues byte-for-byte where the crashed one stopped — and a chunk
  that was charged but not served is re-served without being charged
  again.
* **Worker retry/requeue** — a dead or hung pool worker no longer aborts
  the fan-out: its uncharged-*output* chunks (their budget was already
  durably spent) are requeued to a rebuilt pool with bounded retries,
  exponential backoff and deterministic jitter derived from the chunk's
  own substream (zero draws consumed), degrading to in-process serial
  sampling when the pool is unrecoverable.  Because chunk substreams are
  independent of *where* they are sampled, none of this changes a single
  released byte — worker-count invariance extends to worker-death
  invariance.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Tuple, Union

import numpy as np

from repro.engine import faults as _faults
from repro.engine.durability import AccountantLedger, LedgerError, chunk_crc
from repro.engine.plan import ReleasePlan
from repro.privacy import BudgetExceededError, PrivacyAccountant

#: Default number of counts released per chunk.
DEFAULT_CHUNK_SIZE = 8192

CountStream = Union[Iterable[int], Iterable[np.ndarray], np.ndarray]


def iter_count_chunks(
    counts: CountStream, chunk_size: int, copy: bool = True
) -> Iterator[np.ndarray]:
    """Re-chunk an arbitrary count stream into fixed-size integer arrays.

    Accepts a numpy array (sliced without copying), an iterable of scalars,
    an iterable of array batches, or any mix of the latter two; every
    yielded chunk except possibly the last has exactly ``chunk_size``
    elements.  Memory is bounded by one chunk regardless of how the source
    batches its elements.

    With ``copy=False`` the iterable paths yield views into one
    preallocated internal buffer instead of copying it per chunk — the
    zero-copy mode the serial :class:`StreamExecutor` hot path uses.  Each
    yielded chunk is then only valid until the iterator is advanced; callers
    that retain chunks (e.g. a worker-pool submission window) must keep the
    default.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be a positive integer")
    if isinstance(counts, np.ndarray):
        flat = counts.ravel()
        for start in range(0, flat.shape[0], chunk_size):
            yield flat[start : start + chunk_size]
        return
    buffer = np.empty(chunk_size, dtype=np.int64)
    filled = 0
    for item in counts:
        batch = np.atleast_1d(np.asarray(item, dtype=np.int64)).ravel()
        offset = 0
        while batch.shape[0] - offset >= chunk_size - filled:
            take = chunk_size - filled
            buffer[filled:] = batch[offset : offset + take]
            yield buffer.copy() if copy else buffer
            filled = 0
            offset += take
        rest = batch.shape[0] - offset
        if rest:
            buffer[filled : filled + rest] = batch[offset:]
            filled += rest
    if filled:
        tail = buffer[:filled]
        yield tail.copy() if copy else tail


#: Per-worker mechanism installed by :func:`_init_chunk_worker`: the plan's
#: mechanism is pickled once per worker process (pool initializer), not once
#: per submitted chunk — a sparse/dense payload can be megabytes.
_WORKER_MECHANISM: Optional[object] = None


def _init_chunk_worker(mechanism) -> None:
    """Pool initializer: install the shared mechanism in this worker."""
    global _WORKER_MECHANISM
    _WORKER_MECHANISM = mechanism


def _sample_chunk_task(task):
    """Module-level worker for the seeded fan-out (picklable, as in sweep).

    ``task`` is ``(chunk_index, attempt, chunk, seed)``; index and attempt
    exist only for the fault injector, so chaos tests can kill or hang the
    worker holding a specific chunk on a specific attempt.  A retried
    attempt samples from the *same* child seed — where a chunk is sampled
    (which worker, which attempt) never changes what it releases.
    """
    index, attempt, chunk, seed = task
    injector = _faults.get_injector()
    if injector.should_kill_worker(index, attempt):
        import os

        os._exit(_faults.KILLED_WORKER_EXIT)
    if injector.should_hang_worker(index, attempt):
        time.sleep(injector.hang_seconds)
    return _WORKER_MECHANISM.sample_batch(chunk, rng=np.random.default_rng(seed))


@dataclass
class ExecutorStats:
    """Running totals for one :class:`StreamExecutor`."""

    chunks: int = 0
    records: int = 0
    #: Chunks skipped on resume because the ledger recorded them as served.
    resumed_chunks: int = 0
    resumed_records: int = 0
    #: Chunk submissions replayed after a worker death/hang broke the pool.
    requeues: int = 0
    pool_rebuilds: int = 0
    #: Whether the run fell back to in-process sampling (pool unrecoverable).
    degraded: bool = False


class StreamExecutor:
    """Run a compiled plan over a count stream in fixed-size, budgeted chunks.

    Parameters
    ----------
    plan:
        The :class:`~repro.engine.plan.ReleasePlan` to execute.
    chunk_size:
        Number of counts sampled per chunk; peak incremental memory is
        ``O(chunk_size)`` in the serial discipline.
    accountant:
        Optional :class:`~repro.privacy.PrivacyAccountant`.  Every chunk is
        charged ``plan.alpha_cost`` (sequential composition — conservative:
        successive chunks are assumed to observe the same individuals)
        *before* it is sampled; an over-budget chunk raises
        :class:`~repro.privacy.BudgetExceededError` without drawing.  Note
        the unit of charging is the chunk, so the budget buys
        ``releases_supported(alpha_cost, target)`` *chunks*: halving
        ``chunk_size`` halves the counts a fixed budget covers.  Released
        values are chunking-invariant; the spend is not — pick the chunk
        size to match what one "release" means in your deployment (e.g.
        one reporting period) rather than tuning it after the accountant
        is attached.
    max_workers:
        Worker processes for the seeded discipline (``None``/1 = in
        process).  The shared-stream discipline is inherently serial and
        rejects ``max_workers > 1``.
    ledger:
        Optional :class:`~repro.engine.durability.AccountantLedger` making
        the accounting durable (mutually exclusive with ``accountant``;
        the ledger's wrapped accountant becomes :attr:`accountant`).  Only
        the seeded discipline supports a ledger — the shared-stream
        discipline's draws depend on every preceding chunk, so a partial
        run cannot be resumed without replaying it.
    chunk_timeout:
        Seconds to wait for one chunk's pool result before declaring the
        worker hung and requeueing (``None`` = wait forever).
    max_retries:
        Resubmissions allowed per chunk after pool failures before the
        executor gives up on the pool and degrades to in-process sampling.
    retry_backoff:
        Base of the exponential backoff slept before each pool rebuild;
        the jitter factor is derived deterministically from the waiting
        chunk's substream (consuming zero sampling draws).
    """

    #: Number of chunks whose uniforms the unmetered serial path draws in
    #: one ``rng.random`` call.  Batching draws across chunks is
    #: bit-identical to per-chunk draws (a numpy generator fills a large
    #: array with exactly the draws successive smaller requests would
    #: produce); the same window doubles as the preallocated zero-copy read
    #: buffer, so peak incremental memory stays
    #: ``O(UNIFORM_BATCH_CHUNKS * chunk_size)``.
    UNIFORM_BATCH_CHUNKS = 8

    def __init__(
        self,
        plan: ReleasePlan,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        accountant: Optional[PrivacyAccountant] = None,
        max_workers: Optional[int] = None,
        ledger: Optional[AccountantLedger] = None,
        chunk_timeout: Optional[float] = None,
        max_retries: int = 2,
        retry_backoff: float = 0.05,
    ) -> None:
        if int(chunk_size) != chunk_size or chunk_size < 1:
            raise ValueError("chunk_size must be a positive integer")
        if max_workers is not None and int(max_workers) < 1:
            raise ValueError("max_workers must be a positive integer (or None)")
        if ledger is not None and accountant is not None:
            raise ValueError(
                "pass either accountant or ledger, not both; the ledger "
                "already wraps an accountant"
            )
        if int(max_retries) != max_retries or max_retries < 0:
            raise ValueError("max_retries must be a non-negative integer")
        self.plan = plan
        self.chunk_size = int(chunk_size)
        self.ledger = ledger
        self.accountant = ledger.accountant if ledger is not None else accountant
        self.max_workers = None if max_workers is None else int(max_workers)
        self.chunk_timeout = chunk_timeout
        self.max_retries = int(max_retries)
        self.retry_backoff = float(retry_backoff)
        self.stats = ExecutorStats()

    # ------------------------------------------------------------------ #
    # Shared-stream discipline (bit-identical to one-shot)
    # ------------------------------------------------------------------ #
    def stream(
        self,
        counts: CountStream,
        rng: Optional[np.random.Generator] = None,
    ) -> Iterator[np.ndarray]:
        """Yield released chunks, consuming one shared generator serially.

        The concatenation of the yielded *released counts* is bit-identical
        to ``plan.execute(all_counts, rng=rng)`` on the same generator, for
        every chunk size.  A plan's post-processing hook is applied per
        chunk, so the equivalence extends through the hook only when it is
        elementwise (a cumulative hook such as prefix sums sees one chunk
        at a time here but the whole stream in the one-shot path).  Charges
        the accountant per chunk before sampling.

        Two internal regimes, identical in output: with an accountant
        attached, every chunk is validated, charged and sampled one at a
        time, so a refused chunk has consumed *nothing* from the generator;
        without one, chunks are read into a preallocated zero-copy window
        of :attr:`UNIFORM_BATCH_CHUNKS` chunks whose uniforms are drawn in
        a single ``rng.random`` call (the same uniforms, the same order —
        bit-identity is unaffected).  Counts in a window are validated
        before any of its uniforms are drawn.
        """
        if self.max_workers is not None and self.max_workers > 1:
            raise ValueError(
                "the shared-stream discipline is serial; use stream_seeded() "
                "for process fan-out"
            )
        if self.ledger is not None:
            raise ValueError(
                "the shared-stream discipline cannot checkpoint (every draw "
                "depends on all preceding chunks); attach the ledger to the "
                "seeded discipline (stream_seeded/stream_durable) instead"
            )
        rng = rng if rng is not None else np.random.default_rng()
        if self.accountant is not None:
            # Metered regime: the draw for chunk k must not happen before
            # chunk k's charge succeeds, so uniforms cannot be batched
            # across chunks here.
            for index, chunk in enumerate(iter_count_chunks(counts, self.chunk_size)):
                self._validate_chunk(chunk)
                self._charge(index, chunk.shape[0])
                released = self.plan.execute(chunk, rng=rng)
                self._count(chunk.shape[0])
                yield released
            return
        # Unmetered fast path: zero-copy window buffer + batched RNG draws.
        # The window is a whole multiple of chunk_size, so the yielded chunk
        # boundaries (and therefore stats and per-chunk post-processing)
        # are exactly those of the per-chunk regime.
        window = self.chunk_size * self.UNIFORM_BATCH_CHUNKS
        for superchunk in iter_count_chunks(counts, window, copy=False):
            self._validate_chunk(superchunk)
            uniforms = rng.random(superchunk.shape[0])
            for start in range(0, superchunk.shape[0], self.chunk_size):
                stop = min(start + self.chunk_size, superchunk.shape[0])
                released = self.plan.execute_with_uniforms(
                    superchunk[start:stop], uniforms[start:stop]
                )
                self._count(stop - start)
                yield released

    def run(
        self,
        counts: CountStream,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Release the whole stream and return the concatenated counts."""
        chunks = list(self.stream(counts, rng=rng))
        if not chunks:
            return np.empty(0, dtype=int)
        return np.concatenate(chunks)

    # ------------------------------------------------------------------ #
    # Seeded substream discipline (parallel == serial == resumed)
    # ------------------------------------------------------------------ #
    def stream_seeded(
        self,
        counts: CountStream,
        seed: Optional[int] = None,
    ) -> Iterator[np.ndarray]:
        """Yield released chunks, one child stream per chunk, optionally parallel.

        Child seeds are spawned from ``SeedSequence(seed)`` in serial chunk
        order before any sampling, so the output is identical for every
        ``max_workers`` value.  With ``max_workers > 1`` chunks are sampled
        in worker processes with a bounded submission window (memory stays
        ``O(max_workers * chunk_size)``); results are yielded in input
        order.  Accountant charging happens at submission time, still
        strictly before the chunk is sampled.

        Worker deaths and hangs are survived: see :meth:`stream_durable`,
        which this method wraps (dropping the chunk indices).
        """
        for _index, released in self.stream_durable(counts, seed=seed):
            yield released

    def stream_durable(
        self,
        counts: CountStream,
        seed: Optional[Union[int, np.random.SeedSequence]] = None,
    ) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield ``(chunk_index, released)`` under the seeded discipline.

        The crash-safe entry point: with a ledger attached, chunks the log
        records as served are *skipped* (after checksum-verifying their
        input against the charged stream) and every surviving chunk is
        durably charged before sampling — so the concatenation of this
        run's output with the resumed prefix is byte-identical to an
        uninterrupted run with the same seed.  ``seed`` may be an int, a
        prebuilt :class:`~numpy.random.SeedSequence` (a resumed run passes
        the entropy recorded in the ledger header), or ``None``.
        """
        root = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        tasks = self._seeded_tasks(counts, root)
        workers = self.max_workers if self.max_workers is not None else 1
        if workers <= 1:
            for index, chunk, child in tasks:
                yield index, self._finish(
                    chunk.shape[0], self._sample_local(chunk, child)
                )
            return
        yield from self._stream_pool(tasks, workers)

    def run_seeded(
        self,
        counts: CountStream,
        seed: Optional[int] = None,
    ) -> np.ndarray:
        """Release the whole stream under the seeded discipline."""
        chunks = list(self.stream_seeded(counts, seed=seed))
        if not chunks:
            return np.empty(0, dtype=int)
        return np.concatenate(chunks)

    # ------------------------------------------------------------------ #
    # Seeded internals
    # ------------------------------------------------------------------ #
    def _seeded_tasks(
        self, counts: CountStream, root: np.random.SeedSequence
    ) -> Iterator[Tuple[int, np.ndarray, np.random.SeedSequence]]:
        """Validate, charge and seed every chunk that still needs serving.

        Child seeds are spawned for *every* chunk in serial order —
        including resumed ones — so chunk ``k``'s substream is always the
        ``k``-th spawn, exactly as in an uninterrupted run.  A refused
        chunk raises out of the generator (after zero draws and zero
        durable writes for that chunk).
        """
        for index, chunk in enumerate(iter_count_chunks(counts, self.chunk_size)):
            child = root.spawn(1)[0]
            if self.ledger is not None and self.ledger.is_done(index):
                self.ledger.verify_chunk(index, chunk_crc(chunk))
                self.stats.resumed_chunks += 1
                self.stats.resumed_records += int(chunk.shape[0])
                continue
            self._validate_chunk(chunk)
            if self.ledger is not None:
                self.ledger.charge(
                    index,
                    self.plan.alpha_cost,
                    chunk.shape[0],
                    label=(
                        f"{self.plan.mechanism.name} chunk {index} "
                        f"({chunk.shape[0]} counts)"
                    ),
                    crc=chunk_crc(chunk),
                )
            else:
                self._charge(index, chunk.shape[0])
            yield index, chunk, child

    def _sample_local(
        self, chunk: np.ndarray, child: np.random.SeedSequence
    ) -> np.ndarray:
        """Sample one chunk in-process from its own substream."""
        return self.plan.mechanism.sample_batch(
            chunk, rng=np.random.default_rng(child)
        )

    def _stream_pool(self, tasks, workers: int) -> Iterator[Tuple[int, np.ndarray]]:
        """Pool fan-out with bounded retry/requeue and serial degradation.

        Charged chunks always reach the caller: their budget is spent (and,
        with a ledger, durably so), so a worker death merely requeues them
        — same chunk, same substream, attempt+1 — after an exponential
        backoff whose jitter comes from the waiting chunk's seed (zero
        sampling draws).  When any chunk exhausts ``max_retries`` the pool
        is abandoned and everything still pending (plus the rest of the
        stream) is sampled in-process, preserving output exactly.
        """
        from concurrent.futures import TimeoutError as FutureTimeoutError
        from concurrent.futures.process import BrokenProcessPool

        window = 2 * workers
        pool = self._make_pool(workers)
        #: Pending items: [index, chunk, child, attempt, future], input order.
        pending: "deque" = deque()
        refusal: Optional[BaseException] = None
        exhausted = False
        try:
            while True:
                while not exhausted and refusal is None and len(pending) < window:
                    try:
                        index, chunk, child = next(tasks)
                    except StopIteration:
                        exhausted = True
                        break
                    except (BudgetExceededError, ValueError, LedgerError) as error:
                        # Chunks already charged and submitted must still
                        # reach the caller — the budget was spent on them.
                        # Drain the window, then re-raise the refusal.
                        refusal = error
                        break
                    item = [index, chunk, child, 0, None]
                    self._submit(pool, item)
                    pending.append(item)
                if not pending:
                    break
                head = pending[0]
                try:
                    result = head[4].result(timeout=self.chunk_timeout)
                except (BrokenProcessPool, FutureTimeoutError, OSError):
                    pool = self._requeue(pool, pending, workers)
                    if pool is None:
                        # Unrecoverable: drain in-process, then keep going
                        # serially.  Same chunks, same substreams, same
                        # bytes — just no fan-out anymore.
                        self.stats.degraded = True
                        while pending:
                            index, chunk, child, _attempt, _future = pending.popleft()
                            yield index, self._finish(
                                chunk.shape[0], self._sample_local(chunk, child)
                            )
                        for index, chunk, child in tasks:
                            yield index, self._finish(
                                chunk.shape[0], self._sample_local(chunk, child)
                            )
                        if refusal is not None:
                            raise refusal
                        return
                    continue
                pending.popleft()
                yield head[0], self._finish(head[1].shape[0], result)
            if refusal is not None:
                raise refusal
        finally:
            self._terminate_pool(pool)

    def _make_pool(self, workers: int):
        from concurrent.futures import ProcessPoolExecutor

        return ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_chunk_worker,
            initargs=(self.plan.mechanism,),
        )

    def _terminate_pool(self, pool) -> None:
        """Tear a pool down even when some workers are dead or hung.

        ``shutdown(wait=True)`` would join a hung worker forever, so kill
        the processes first (best-effort, via the executor's private
        process table) and then shut down without waiting.
        """
        if pool is None:
            return
        for process in list((getattr(pool, "_processes", None) or {}).values()):
            try:
                process.terminate()
            except Exception:  # pragma: no cover - already-dead workers
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def _requeue(self, pool, pending: "deque", workers: int):
        """Rebuild the pool and resubmit everything pending; None if hopeless.

        Every pending chunk's charge already happened (possibly durably),
        so dropping one would lose paid-for output; resubmitting one with
        a fresh generator from the same child seed changes nothing about
        its released bytes.  Retries are bounded per chunk; backoff grows
        exponentially with the head chunk's attempt count, jittered
        deterministically from its seed lineage (spawn-key extension — the
        sampling substream itself is never touched).
        """
        self._terminate_pool(pool)
        head = pending[0]
        if head[3] + 1 > self.max_retries:
            return None
        self.stats.pool_rebuilds += 1
        delay = self.retry_backoff * (2 ** head[3])
        if delay > 0:
            jitter_source = np.random.SeedSequence(
                entropy=head[2].entropy,
                spawn_key=tuple(head[2].spawn_key) + (0xB0FF, head[3]),
            )
            jitter = jitter_source.generate_state(1, dtype=np.uint32)[0] / 2**32
            time.sleep(delay * (0.5 + float(jitter)))
        pool = self._make_pool(workers)
        for item in pending:
            item[3] += 1
            self._submit(pool, item)
            self.stats.requeues += 1
        return pool

    def _submit(self, pool, item) -> None:
        """Submit one pending item, absorbing a pool that broke mid-submit.

        A worker can die between our liveness checks; ``submit`` then
        raises.  Installing the error as the item's "result" routes the
        failure through the same head-of-queue requeue path as a death
        detected while waiting.
        """
        from concurrent.futures import Future
        from concurrent.futures.process import BrokenProcessPool

        try:
            item[4] = pool.submit(
                _sample_chunk_task, (item[0], item[3], item[1], item[2])
            )
        except BrokenProcessPool as error:
            placeholder: Future = Future()
            placeholder.set_exception(error)
            item[4] = placeholder

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _validate_chunk(self, chunk: np.ndarray) -> None:
        """Reject out-of-range counts *before* the chunk is charged.

        The sampler would reject them anyway, but only after
        :meth:`_charge` has recorded the release — which would burn budget
        on a chunk that releases nothing.  Validation must precede
        charging, which must precede sampling.
        """
        if chunk.size and (chunk.min() < 0 or chunk.max() > self.plan.n):
            raise ValueError(
                f"counts must lie in [0, {self.plan.n}]; "
                f"got [{chunk.min()}, {chunk.max()}]"
            )

    def _charge(self, index: int, size: int) -> None:
        """Charge one chunk before sampling it (raises without drawing)."""
        self.plan.charge(
            self.accountant,
            label=f"{self.plan.mechanism.name} chunk {index} ({size} counts)",
        )

    def _count(self, size: int) -> None:
        self.stats.chunks += 1
        self.stats.records += int(size)

    def _finish(self, size: int, released: np.ndarray) -> np.ndarray:
        """Account for a seeded chunk and apply the plan's post-processing.

        The seeded path samples outside :meth:`ReleasePlan.execute` (worker
        processes must not mutate the parent's plan counters, and the
        post-processing hook need not be picklable), so counters and the
        hook are applied here in the parent.
        """
        self._count(size)
        self.plan.executions += 1
        self.plan.records_released += int(size)
        if self.plan.postprocess is not None:
            released = np.asarray(self.plan.postprocess(released))
        return released

    def describe(self) -> str:
        """One-line summary for CLI ``--stats`` output."""
        spent = "" if self.accountant is None else f" {self.accountant.describe()}"
        resumed = (
            f" resumed_chunks={self.stats.resumed_chunks}"
            if self.stats.resumed_chunks
            else ""
        )
        recovery = (
            f" requeues={self.stats.requeues} pool_rebuilds={self.stats.pool_rebuilds}"
            f"{' degraded' if self.stats.degraded else ''}"
            if self.stats.requeues or self.stats.degraded
            else ""
        )
        return (
            f"chunks={self.stats.chunks} records={self.stats.records} "
            f"chunk_size={self.chunk_size}{resumed}{recovery}{spent} "
            f"{self.plan.describe()}"
        )
