"""Setuptools entry point.

The project is fully described by ``pyproject.toml``; this shim exists so
that editable installs also work on older tooling stacks (and in offline
environments without the ``wheel`` package, via
``pip install -e . --no-use-pep517 --no-build-isolation``).
"""

from setuptools import setup

setup()
