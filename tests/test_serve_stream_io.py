"""``serve-stream`` error paths and the binary (``.npy``) protocol.

The CLI contract under failure: malformed input dies with a pointed
message, an exhausted budget exits 1 only *after* flushing every chunk
served before the refusal, and the binary protocol releases byte-identical
counts to the text protocol for the same seed — including in the partial
file a refusal leaves behind.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main


def _write_counts(path, values):
    path.write_text("\n".join(str(int(v)) for v in values) + "\n")


class TestServeStreamErrorPaths:
    def test_malformed_line_reports_file_and_line_number(self, tmp_path, capsys):
        counts_path = tmp_path / "counts.txt"
        counts_path.write_text("1\n2\nbanana\n4\n")
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["serve-stream", "--n", "8", "--alpha", "0.9",
                 "--counts-file", str(counts_path), "--seed", "1"]
            )
        message = str(excinfo.value)
        assert "banana" in message
        assert ":3:" in message  # the offending line number

    def test_blank_lines_are_skipped_not_errors(self, tmp_path, capsys):
        sparse_path = tmp_path / "gaps.txt"
        sparse_path.write_text("1\n\n2\n   \n3\n\n")
        dense_path = tmp_path / "dense.txt"
        dense_path.write_text("1\n2\n3\n")
        outputs = []
        for path in (sparse_path, dense_path):
            assert main(
                ["serve-stream", "--n", "8", "--alpha", "0.9",
                 "--counts-file", str(path), "--seed", "5"]
            ) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]

    def test_empty_input_serves_nothing_and_exits_zero(self, tmp_path, capsys):
        empty = tmp_path / "empty.txt"
        empty.write_text("\n\n")
        out_path = tmp_path / "released.txt"
        assert main(
            ["serve-stream", "--n", "8", "--alpha", "0.9",
             "--counts-file", str(empty), "--output", str(out_path), "--seed", "1"]
        ) == 0
        assert "wrote 0 released counts" in capsys.readouterr().out
        assert out_path.read_text() == ""

    def test_zero_count_chunks_from_empty_batches(self, tmp_path, capsys):
        # An empty .npy input is the executor's zero-chunk regime end to end.
        in_path = tmp_path / "empty.npy"
        np.save(in_path, np.empty(0, dtype=np.int64))
        out_path = tmp_path / "released.npy"
        assert main(
            ["serve-stream", "--n", "8", "--alpha", "0.9",
             "--counts-file", str(in_path), "--output", str(out_path), "--seed", "1"]
        ) == 0
        assert np.load(out_path).shape == (0,)

    def test_out_of_range_count_dies_before_serving(self, tmp_path, capsys):
        counts_path = tmp_path / "counts.txt"
        counts_path.write_text("1\n99\n")
        with pytest.raises(SystemExit, match="must lie in"):
            main(
                ["serve-stream", "--n", "8", "--alpha", "0.9",
                 "--counts-file", str(counts_path), "--seed", "1"]
            )

    def test_budget_refusal_exits_1_after_flushing_served_chunks(self, tmp_path, capsys):
        counts_path = tmp_path / "counts.txt"
        _write_counts(counts_path, [1] * 30)
        exit_code = main(
            ["serve-stream", "--n", "8", "--alpha", "0.9",
             "--counts-file", str(counts_path), "--chunk-size", "10",
             "--seed", "1", "--budget-alpha", str(0.9**2)]
        )
        captured = capsys.readouterr()
        assert exit_code == 1
        # Budget 0.9^2 buys exactly two alpha=0.9 chunks; both reached stdout.
        assert len(captured.out.split()) == 20
        assert "privacy budget exhausted after 20 released counts" in captured.err


class TestServeStreamNpyProtocol:
    def _released(self, capsys, argv):
        assert main(argv) == 0
        return [int(line) for line in capsys.readouterr().out.split()]

    def test_npy_input_round_trips_identically_to_text(self, tmp_path, capsys):
        values = np.random.default_rng(20).integers(0, 33, size=257)
        text_path = tmp_path / "counts.txt"
        _write_counts(text_path, values)
        npy_path = tmp_path / "counts.npy"
        np.save(npy_path, values)
        base = ["serve-stream", "--n", "32", "--alpha", "0.9",
                "--chunk-size", "40", "--seed", "9", "--counts-file"]
        from_text = self._released(capsys, base + [str(text_path)])
        from_npy = self._released(capsys, base + [str(npy_path)])
        assert from_npy == from_text

    def test_npy_output_round_trips_identically_to_text(self, tmp_path, capsys):
        values = np.random.default_rng(21).integers(0, 17, size=100)
        counts_path = tmp_path / "counts.npy"
        np.save(counts_path, values)
        text_out = tmp_path / "released.txt"
        npy_out = tmp_path / "released.npy"
        for out in (text_out, npy_out):
            assert main(
                ["serve-stream", "--n", "16", "--alpha", "0.8",
                 "--counts-file", str(counts_path), "--chunk-size", "33",
                 "--seed", "4", "--output", str(out)]
            ) == 0
            assert "wrote 100 released counts" in capsys.readouterr().out
        from_text = [int(v) for v in text_out.read_text().split()]
        assert np.array_equal(np.load(npy_out), from_text)

    def test_budget_refusal_leaves_loadable_partial_npy(self, tmp_path, capsys):
        counts_path = tmp_path / "counts.npy"
        np.save(counts_path, np.ones(30, dtype=np.int64))
        out_path = tmp_path / "partial.npy"
        exit_code = main(
            ["serve-stream", "--n", "8", "--alpha", "0.9",
             "--counts-file", str(counts_path), "--chunk-size", "10",
             "--seed", "1", "--budget-alpha", str(0.9**2),
             "--output", str(out_path)]
        )
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "PARTIAL" in captured.err
        # The back-patched header makes the prefix a valid .npy file.
        partial = np.load(out_path)
        assert partial.shape == (20,)
        assert partial.min() >= 0 and partial.max() <= 8

    def test_float_npy_input_is_refused(self, tmp_path, capsys):
        bad = tmp_path / "floats.npy"
        np.save(bad, np.ones(5))
        with pytest.raises(SystemExit, match="integer dtype"):
            main(["serve-stream", "--n", "8", "--alpha", "0.9",
                  "--counts-file", str(bad), "--seed", "1"])

    def test_2d_npy_input_is_refused(self, tmp_path, capsys):
        bad = tmp_path / "matrix.npy"
        np.save(bad, np.ones((2, 3), dtype=np.int64))
        with pytest.raises(SystemExit, match="1-D"):
            main(["serve-stream", "--n", "8", "--alpha", "0.9",
                  "--counts-file", str(bad), "--seed", "1"])

    def test_missing_npy_input_is_a_clean_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["serve-stream", "--n", "8", "--alpha", "0.9",
                  "--counts-file", str(tmp_path / "nowhere.npy"), "--seed", "1"])

    def test_npy_output_with_seeded_workers_matches_text(self, tmp_path, capsys):
        values = np.random.default_rng(22).integers(0, 17, size=90)
        counts_path = tmp_path / "counts.txt"
        _write_counts(counts_path, values)
        npy_out = tmp_path / "released.npy"
        assert main(
            ["serve-stream", "--n", "16", "--alpha", "0.9",
             "--counts-file", str(counts_path), "--chunk-size", "25",
             "--seed", "7", "--max-workers", "1", "--output", str(npy_out)]
        ) == 0
        capsys.readouterr()
        from_text = self._released(
            capsys,
            ["serve-stream", "--n", "16", "--alpha", "0.9",
             "--counts-file", str(counts_path), "--chunk-size", "25",
             "--seed", "7", "--max-workers", "1"],
        )
        assert np.array_equal(np.load(npy_out), from_text)
