"""Tests for the Figure-5 flowchart selector (repro.core.selector)."""

from __future__ import annotations

import pytest

from repro.core.design import optimal_objective_value
from repro.core.losses import l0_score
from repro.core.properties import check_all_properties, parse_properties, satisfies_all
from repro.core.selector import (
    BRANCH_FAIR,
    BRANCH_GEOMETRIC,
    BRANCH_WEAK_HONESTY,
    BRANCH_WEAK_HONESTY_COLUMN,
    SelectorDecision,
    choose_mechanism,
    decide,
    gm_satisfies,
)
from repro.core.theory import weak_honesty_threshold


class TestDecisionBranches:
    def test_fairness_always_goes_to_em(self):
        for extra in ("F", "F+S", "F+CM+WH", "all"):
            assert decide(6, 0.9, extra).branch == BRANCH_FAIR

    def test_row_only_properties_go_to_gm(self):
        for props in ((), "S", "RH", "RM", "S+RM"):
            assert decide(6, 0.9, props).branch == BRANCH_GEOMETRIC

    def test_weak_honesty_below_threshold_needs_lp(self):
        # alpha = 0.9 -> threshold 18; n = 6 is below it, so GM is not enough.
        decision = decide(6, 0.9, "WH")
        assert decision.branch == BRANCH_WEAK_HONESTY

    def test_weak_honesty_above_threshold_uses_gm(self):
        # n = 20 >= 18 = 2*0.9/0.1, so GM already satisfies WH (Lemma 2).
        assert decide(20, 0.9, "WH").branch == BRANCH_GEOMETRIC

    def test_column_property_with_high_alpha_needs_lp(self):
        assert decide(6, 0.9, "CM").branch == BRANCH_WEAK_HONESTY_COLUMN
        assert decide(6, 0.9, "CH+WH").branch == BRANCH_WEAK_HONESTY_COLUMN

    def test_column_property_with_low_alpha_uses_gm(self):
        # Lemma 3: GM is column monotone once alpha <= 1/2.
        assert decide(6, 0.4, "CM+WH").branch == BRANCH_GEOMETRIC

    def test_decision_is_dataclass_with_description(self):
        decision = decide(4, 0.8, "WH")
        assert isinstance(decision, SelectorDecision)
        assert "WH" in decision.describe()
        assert decision.n == 4 and decision.alpha == 0.8

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            decide(0, 0.5, ())
        with pytest.raises(ValueError):
            decide(4, 1.2, ())


class TestGmSatisfies:
    def test_unconditional_properties(self):
        assert gm_satisfies("S+RM+RH", n=2, alpha=0.99)

    def test_fairness_never_satisfied(self):
        assert not gm_satisfies("F", n=8, alpha=0.3)

    def test_weak_honesty_threshold_respected(self):
        alpha = 0.76
        threshold = weak_honesty_threshold(alpha)  # about 6.33
        assert not gm_satisfies("WH", n=6, alpha=alpha)
        assert gm_satisfies("WH", n=7, alpha=alpha)
        assert threshold == pytest.approx(6.3333, abs=1e-3)

    def test_column_properties_depend_on_alpha(self):
        assert gm_satisfies("CM", n=6, alpha=0.5)
        assert not gm_satisfies("CM", n=6, alpha=0.51)


class TestChooseMechanism:
    @pytest.mark.parametrize(
        "properties",
        [(), "S", "RM", "WH", "CH", "CM", "F", "F+CM", "WH+RM", "all"],
    )
    def test_returned_mechanism_satisfies_request(self, properties):
        mechanism, decision = choose_mechanism(5, 0.88, properties)
        assert satisfies_all(mechanism, parse_properties(properties), tolerance=1e-6)
        assert mechanism.metadata["selector_branch"] == decision.branch
        assert mechanism.max_alpha() >= 0.88 - 1e-6

    @pytest.mark.parametrize(
        "n,alpha,properties",
        [
            (4, 0.9, "WH"),
            (4, 0.9, "CM"),
            (6, 0.76, "WH"),
            (8, 0.76, "WH+CM"),
            (5, 0.4, "CM"),
            (6, 0.85, "F"),
            (7, 0.62, ()),
        ],
    )
    def test_flowchart_never_loses_optimality(self, n, alpha, properties):
        """The shortcut mechanism costs the same as solving the LP directly."""
        mechanism, _ = choose_mechanism(n, alpha, properties)
        direct = optimal_objective_value(n, alpha, properties=properties)
        # Convert the LP objective (raw O_{0,sum}) to the rescaled L0 scale.
        rescaled_direct = (n + 1) / n * direct
        assert l0_score(mechanism) == pytest.approx(rescaled_direct, abs=1e-6)

    def test_explicit_branches_avoid_lp(self):
        mechanism, decision = choose_mechanism(6, 0.9, "F")
        assert decision.branch == BRANCH_FAIR
        assert mechanism.metadata["source"] == "closed-form"
        mechanism, decision = choose_mechanism(6, 0.9, "RM")
        assert decision.branch == BRANCH_GEOMETRIC
        assert mechanism.metadata["source"] == "closed-form"

    def test_lp_branches_record_lp_source(self):
        mechanism, decision = choose_mechanism(5, 0.9, "WH")
        assert decision.branch == BRANCH_WEAK_HONESTY
        assert mechanism.metadata["source"] == "lp"

    def test_paper_figure5_only_four_branches_exist(self):
        branches = set()
        for properties in (
            (), "RH", "RM", "S", "WH", "CH", "CM", "F",
            "WH+RM", "WH+CM", "F+S", "RM+CH", "all",
        ):
            branches.add(decide(5, 0.9, properties).branch)
        assert branches <= {
            BRANCH_FAIR,
            BRANCH_GEOMETRIC,
            BRANCH_WEAK_HONESTY,
            BRANCH_WEAK_HONESTY_COLUMN,
        }
        assert len(branches) == 4
