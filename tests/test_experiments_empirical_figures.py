"""Tests for the empirical experiment drivers: Figures 10, 11, 12 and 13.

These use reduced workloads (smaller populations, fewer repetitions) so the
suite stays fast, but still check the qualitative conclusions the paper draws
from each figure.
"""

from __future__ import annotations

import pytest

from repro.data.adult import generate_adult_like
from repro.experiments import fig10_adult, fig11_l01_binomial, fig12_l0d_histograms, fig13_rmse


@pytest.fixture(scope="module")
def adult_result():
    dataset = generate_adult_like(num_records=6000, seed=3)
    return fig10_adult.run(
        group_sizes=(4, 8),
        repetitions=20,
        dataset=dataset,
        seed=3,
    )


class TestFigure10:
    def test_rows_cover_grid(self, adult_result):
        # 2 group sizes x 3 targets x 4 mechanisms.
        assert len(adult_result.rows) == 2 * 3 * 4
        assert {row["target"] for row in adult_result.rows} == {"young", "gender", "income"}

    def test_um_error_rate_matches_reference(self, adult_result):
        for row in adult_result.rows:
            if row["mechanism"] == "UM":
                assert row["error_rate"] == pytest.approx(row["um_reference"], abs=0.03)

    def test_gm_worse_than_um_on_mid_heavy_targets(self, adult_result):
        # The paper's headline real-data finding at alpha = 0.9: GM does
        # appreciably worse than uniform guessing on this data.
        for target in ("gender", "income"):
            for group_size in (4, 8):
                ranking = fig10_adult.mechanism_ranking(adult_result, target, group_size)
                assert ranking["GM"] > ranking["UM"] - 0.01

    def test_em_is_best_or_close_to_best(self, adult_result):
        for target in ("young", "gender", "income"):
            for group_size in (4, 8):
                ranking = fig10_adult.mechanism_ranking(adult_result, target, group_size)
                best = min(ranking.values())
                assert ranking["EM"] <= best + 0.02

    def test_error_bars_recorded(self, adult_result):
        assert all(row["error_rate_stderr"] >= 0 for row in adult_result.rows)

    def test_target_rates_artefact(self, adult_result):
        rates = adult_result.artefacts["target_rates"]
        assert set(rates) == {"young", "gender", "income"}


class TestFigure11:
    @pytest.fixture(scope="class")
    def result(self):
        return fig11_l01_binomial.run(
            alphas=(0.91, 0.67),
            group_sizes=(8,),
            probabilities=(0.1, 0.5),
            repetitions=8,
            population=4000,
            seed=5,
        )

    def test_grid_dimensions(self, result):
        # 2 alphas x 1 group size x 2 probabilities x 4 mechanisms.
        assert len(result.rows) == 16
        assert all("exceeds_1_rate" in row for row in result.rows)

    def test_balanced_input_strong_privacy_favours_em_over_gm(self, result):
        def cell(mechanism, alpha, probability):
            rows = [
                row
                for row in result.rows
                if row["mechanism"] == mechanism
                and row["alpha"] == pytest.approx(alpha)
                and row["probability"] == pytest.approx(probability)
            ]
            assert len(rows) == 1
            return rows[0]["exceeds_1_rate"]

        assert cell("EM", 0.91, 0.5) < cell("GM", 0.91, 0.5)
        # Skewed input (p = 0.1) is GM's favourable regime: it improves a lot.
        assert cell("GM", 0.91, 0.1) < cell("GM", 0.91, 0.5)

    def test_lower_alpha_reduces_error_overall(self, result):
        def mean_rate(alpha):
            rows = [row for row in result.rows if row["alpha"] == pytest.approx(alpha)]
            return sum(row["exceeds_1_rate"] for row in rows) / len(rows)

        assert mean_rate(0.67) < mean_rate(0.91)


class TestFigure12:
    @pytest.fixture(scope="class")
    def result(self):
        return fig12_l0d_histograms.run(
            alphas=(0.91,),
            group_size=8,
            probabilities=(0.5, 0.1),
            repetitions=8,
            population=4000,
            seed=6,
        )

    def test_rows_cover_all_distances(self, result):
        distances = {row["d"] for row in result.rows}
        assert distances == set(range(8))

    def test_tail_rates_decrease_with_d(self, result):
        for mechanism in ("GM", "EM", "UM", "WM"):
            for probability in (0.5, 0.1):
                values = [
                    (row["d"], row["empirical_rate"])
                    for row in result.rows
                    if row["mechanism"] == mechanism
                    and row["probability"] == pytest.approx(probability)
                ]
                values.sort()
                rates = [rate for _, rate in values]
                assert all(a >= b - 0.02 for a, b in zip(rates, rates[1:]))

    def test_empirical_close_to_analytic(self, result):
        for row in result.rows:
            assert row["empirical_rate"] == pytest.approx(row["analytic_rate"], abs=0.05)

    def test_em_tail_thinner_than_gm_on_balanced_input(self, result):
        # Figure 12 top row: the EM-vs-GM margin grows with d on balanced data.
        for d in (2, 3, 4):
            gm = [
                row["empirical_rate"]
                for row in result.rows
                if row["mechanism"] == "GM" and row["d"] == d and row["probability"] == 0.5
            ][0]
            em = [
                row["empirical_rate"]
                for row in result.rows
                if row["mechanism"] == "EM" and row["d"] == d and row["probability"] == 0.5
            ][0]
            assert em < gm


class TestFigure13:
    @pytest.fixture(scope="class")
    def result(self):
        return fig13_rmse.run(
            alphas=(0.91, 0.67),
            group_sizes=(4, 8),
            probabilities=(0.1, 0.5),
            repetitions=8,
            population=4000,
            mechanisms=("GM", "EM", "UM"),
            seed=7,
        )

    def test_grid_dimensions(self, result):
        # 2 alphas x 2 group sizes x 2 probabilities x 3 mechanisms.
        assert len(result.rows) == 24

    def test_empirical_rmse_close_to_analytic(self, result):
        for row in result.rows:
            assert row["rmse"] == pytest.approx(row["analytic_rmse"], rel=0.15)

    def test_rmse_grows_with_group_size(self, result):
        for mechanism in ("GM", "EM", "UM"):
            small = [
                row["rmse"]
                for row in result.rows
                if row["mechanism"] == mechanism and row["group_size"] == 4
            ]
            large = [
                row["rmse"]
                for row in result.rows
                if row["mechanism"] == mechanism and row["group_size"] == 8
            ]
            assert sum(large) / len(large) > sum(small) / len(small)

    def test_em_beats_gm_at_strong_privacy_balanced_input(self, result):
        def cell(mechanism):
            rows = [
                row
                for row in result.rows
                if row["mechanism"] == mechanism
                and row["alpha"] == pytest.approx(0.91)
                and row["probability"] == pytest.approx(0.5)
                and row["group_size"] == 8
            ]
            return rows[0]["rmse"]

        assert cell("EM") < cell("GM")
