"""Tests for reporting helpers (repro.eval.reporting)."""

from __future__ import annotations

import csv
import io

import numpy as np
import pytest

from repro.eval.reporting import (
    ascii_heatmap,
    describe_mechanism,
    format_table,
    format_value,
    rows_to_csv,
)
from repro.mechanisms.geometric import geometric_mechanism
from repro.mechanisms.uniform import uniform_mechanism


class TestFormatting:
    def test_format_value_types(self):
        assert format_value(0.123456, precision=3) == "0.123"
        assert format_value(7) == "7"
        assert format_value(True) == "yes"
        assert format_value("GM") == "GM"

    def test_format_table_alignment_and_columns(self):
        rows = [
            {"mechanism": "GM", "l0": 0.9473},
            {"mechanism": "EM", "l0": 0.9669, "extra": 1},
        ]
        table = format_table(rows, title="scores")
        lines = table.splitlines()
        assert lines[0] == "scores"
        assert "mechanism" in lines[1] and "extra" in lines[1]
        assert len(lines) == 2 + 1 + 2  # title + header + separator + two rows

    def test_format_table_explicit_columns(self):
        rows = [{"a": 1, "b": 2}]
        table = format_table(rows, columns=["b"])
        assert "a" not in table.splitlines()[0]

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")


class TestCsv:
    def test_round_trip(self, tmp_path):
        rows = [{"mechanism": "GM", "l0": 0.5}, {"mechanism": "EM", "l0": 0.6}]
        path = tmp_path / "out.csv"
        text = rows_to_csv(rows, path=path)
        assert path.read_text() == text
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert parsed[0]["mechanism"] == "GM"
        assert float(parsed[1]["l0"]) == pytest.approx(0.6)

    def test_missing_columns_left_blank(self):
        text = rows_to_csv([{"a": 1}, {"b": 2}])
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert parsed[0]["b"] == ""
        assert parsed[1]["a"] == ""


class TestHeatmap:
    def test_heatmap_dimensions(self):
        text = ascii_heatmap(np.eye(4) * 0.7 + 0.1)
        output_lines = [line for line in text.splitlines() if line.startswith("out")]
        assert len(output_lines) == 4

    def test_heatmap_accepts_mechanism_and_titles(self):
        gm = geometric_mechanism(3, 0.8)
        text = ascii_heatmap(gm)
        assert text.splitlines()[0].startswith("GM")

    def test_heatmap_handles_zero_matrix(self):
        text = ascii_heatmap(np.zeros((2, 2)))
        assert "out  0" in text


class TestDescribeMechanism:
    def test_description_contains_scores_and_properties(self):
        text = describe_mechanism(uniform_mechanism(3))
        assert "UM" in text
        assert "L0=1.0000" in text
        assert "F=yes" in text

    def test_description_for_gm(self):
        text = describe_mechanism(geometric_mechanism(4, 0.9))
        assert "F=no" in text
        assert "epsilon" in text
