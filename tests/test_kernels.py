"""Bit-identity of the native sampling kernels, the batched-RNG executor
hot path and the binary stream I/O.

The PR's contract is that every fast path is *gated on bit-identity*: the
guide kernel (numba or numpy) must release exactly the counts of the
sequential reference sampler, the executor's batched uniform draws must not
change a single released value, and a ``.npy`` round trip must reproduce
the text protocol byte for byte.  These tests are the gate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import _kernels
from repro.core.mechanism import Mechanism, SparseMechanism
from repro.engine import ReleasePlan, StreamExecutor, iter_count_chunks
from repro.engine.stream_io import (
    COUNT_DTYPE,
    NpyCountWriter,
    is_npy_path,
    open_npy_counts,
)
from repro.mechanisms.geometric import geometric_mechanism
from repro.privacy import PrivacyAccountant


def _dense_gm(n=32, alpha=0.5):
    return Mechanism(geometric_mechanism(n, alpha).matrix, name="gm", alpha=alpha)


# --------------------------------------------------------------------- #
# Kernel dispatch and the REPRO_NO_NUMBA switch
# --------------------------------------------------------------------- #
class TestKernelDispatch:
    def test_env_switch_parsing(self, monkeypatch):
        for value, disabled in [("", False), ("0", False), ("1", True), ("true", True)]:
            monkeypatch.setenv(_kernels.NO_NUMBA_ENV, value)
            assert _kernels.numba_disabled_by_env() is disabled
        monkeypatch.delenv(_kernels.NO_NUMBA_ENV)
        assert _kernels.numba_disabled_by_env() is False

    def test_env_switch_deactivates_kernel_per_call(self, monkeypatch):
        monkeypatch.setenv(_kernels.NO_NUMBA_ENV, "1")
        assert _kernels.kernel_active() is False
        assert _kernels.kernel_name() == "numpy"
        monkeypatch.delenv(_kernels.NO_NUMBA_ENV)
        # With the switch released, activity reflects numba availability
        # alone — no re-import required.
        assert _kernels.kernel_active() is _kernels.numba_available()

    def test_module_importable_without_numba(self):
        # jit_kernel() must never raise, whatever the environment provides.
        kernel = _kernels.jit_kernel()
        assert kernel is None or callable(kernel)

    def test_sampling_unaffected_by_env_switch(self, monkeypatch):
        """Released counts are identical with the JIT kernel on and off."""
        mechanism = _dense_gm()
        counts = np.random.default_rng(7).integers(0, 33, size=4096)
        monkeypatch.setenv(_kernels.NO_NUMBA_ENV, "1")
        off = mechanism.sample_tiled(counts, 10, rng=np.random.default_rng(11))
        monkeypatch.delenv(_kernels.NO_NUMBA_ENV)
        on = mechanism.sample_tiled(counts, 10, rng=np.random.default_rng(11))
        assert np.array_equal(off, on)


# --------------------------------------------------------------------- #
# Guide-path bit-identity (numpy path always; JIT path when available)
# --------------------------------------------------------------------- #
class TestGuideKernelIdentity:
    def test_tiled_guide_path_equals_sequential_batches(self):
        """sample_tiled large enough to take the guide path must equal
        sequential sample_batch calls on the same stream."""
        mechanism = _dense_gm(n=32)
        rng = np.random.default_rng(3)
        counts = rng.integers(0, 33, size=512)
        repetitions = 70  # 70 * 512 > size * GUIDE_BINS / 4: guide regime
        assert mechanism._use_guide(repetitions * counts.shape[0])
        tiled = mechanism.sample_tiled(counts, repetitions, rng=np.random.default_rng(5))
        sequential_rng = np.random.default_rng(5)
        for r in range(repetitions):
            row = mechanism.sample_batch(counts, rng=sequential_rng)
            assert np.array_equal(tiled[r], row), f"repetition {r} deviates"

    def test_numpy_guide_matches_exact_inversion_elementwise(self):
        mechanism = _dense_gm(n=16)
        rng = np.random.default_rng(13)
        counts = rng.integers(0, 17, size=50_000)
        uniforms = rng.random(50_000)
        table = mechanism._guide_table()
        via_guide = _kernels.guide_sample_numpy(
            table, counts, uniforms, mechanism.GUIDE_BINS, mechanism._inverse_sample
        )
        exact = mechanism._inverse_sample(counts, uniforms)
        assert np.array_equal(via_guide, exact)

    @pytest.mark.skipif(
        not _kernels.numba_available(), reason="numba not installed"
    )
    def test_jit_guide_matches_numpy_guide_elementwise(self):
        for n in (4, 16, 64, 511):
            mechanism = _dense_gm(n=n)
            rng = np.random.default_rng(n)
            counts = rng.integers(0, n + 1, size=20_000)
            uniforms = rng.random(20_000)
            table = mechanism._guide_table()
            reference = _kernels.guide_sample_numpy(
                table, counts, uniforms, mechanism.GUIDE_BINS, mechanism._inverse_sample
            )
            jitted = _kernels.guide_sample_jit(
                table,
                mechanism._guide_sampling_cdfs(),
                counts,
                uniforms,
                mechanism.GUIDE_BINS,
            )
            assert np.array_equal(jitted, reference), f"n={n}"

    @pytest.mark.skipif(
        not _kernels.numba_available(), reason="numba not installed"
    )
    def test_jit_guide_matches_for_sparse_representation(self):
        base = geometric_mechanism(24, 0.4).matrix
        mechanism = SparseMechanism(base, name="gm-sparse", alpha=0.4)
        rng = np.random.default_rng(99)
        counts = rng.integers(0, 25, size=30_000)
        uniforms = rng.random(30_000)
        table = mechanism._guide_table()
        reference = _kernels.guide_sample_numpy(
            table, counts, uniforms, mechanism.GUIDE_BINS, mechanism._inverse_sample
        )
        jitted = _kernels.guide_sample_jit(
            table,
            mechanism._guide_sampling_cdfs(),
            counts,
            uniforms,
            mechanism.GUIDE_BINS,
        )
        assert np.array_equal(jitted, reference)

    def test_guide_sampling_cdfs_rows_are_the_fallback_cdfs(self):
        for mechanism in (_dense_gm(n=12), SparseMechanism(
            geometric_mechanism(12, 0.6).matrix, alpha=0.6
        )):
            cdfs = mechanism._guide_sampling_cdfs()
            assert cdfs.shape == (13, 13)
            for j in range(13):
                assert np.array_equal(cdfs[j], mechanism._sampling_cdf_row(j))


# --------------------------------------------------------------------- #
# sample_with_uniforms: the executor's batched-RNG entry point
# --------------------------------------------------------------------- #
class TestSampleWithUniforms:
    def test_equals_sample_batch_on_same_stream(self):
        mechanism = _dense_gm(n=20)
        counts = np.random.default_rng(1).integers(0, 21, size=1000)
        batch = mechanism.sample_batch(counts, rng=np.random.default_rng(2))
        uniforms = np.random.default_rng(2).random(1000)
        assert np.array_equal(batch, mechanism.sample_with_uniforms(counts, uniforms))

    def test_empty_batch(self):
        mechanism = _dense_gm(n=4)
        released = mechanism.sample_with_uniforms([], np.empty(0))
        assert released.shape == (0,) and released.dtype.kind == "i"

    def test_shape_mismatch_rejected(self):
        mechanism = _dense_gm(n=4)
        with pytest.raises(ValueError, match="do not match"):
            mechanism.sample_with_uniforms([1, 2, 3], np.zeros(2))

    def test_out_of_range_counts_rejected(self):
        mechanism = _dense_gm(n=4)
        with pytest.raises(ValueError, match="must lie in"):
            mechanism.sample_with_uniforms([5], np.zeros(1))


# --------------------------------------------------------------------- #
# Executor: batched uniforms + zero-copy windows stay bit-identical
# --------------------------------------------------------------------- #
class TestExecutorBatchedRng:
    def _plan(self, n=40, alpha=0.6):
        return ReleasePlan.from_mechanism(_dense_gm(n=n, alpha=alpha))

    @pytest.mark.parametrize("chunk_size", [1, 7, 100, 8192])
    def test_stream_equals_one_shot_for_every_chunk_size(self, chunk_size):
        plan = self._plan()
        counts = np.random.default_rng(8).integers(0, 41, size=3001)
        expected = plan.execute(counts, rng=np.random.default_rng(21))
        executor = StreamExecutor(plan, chunk_size=chunk_size)
        released = executor.run(counts, rng=np.random.default_rng(21))
        assert np.array_equal(released, expected)

    def test_iterable_source_equals_ndarray_source(self):
        plan = self._plan()
        counts = np.random.default_rng(9).integers(0, 41, size=2500)
        from_array = StreamExecutor(plan, chunk_size=64).run(
            counts, rng=np.random.default_rng(33)
        )
        # A generator of odd-sized batches exercises the preallocated
        # zero-copy buffer refill logic.
        def batches():
            i = 0
            while i < counts.shape[0]:
                step = (i % 37) + 1
                yield counts[i : i + step]
                i += step

        from_iter = StreamExecutor(plan, chunk_size=64).run(
            batches(), rng=np.random.default_rng(33)
        )
        assert np.array_equal(from_iter, from_array)

    def test_metered_and_unmetered_regimes_release_identically(self):
        plan = self._plan()
        counts = np.random.default_rng(10).integers(0, 41, size=2000)
        unmetered = StreamExecutor(plan, chunk_size=128).run(
            counts, rng=np.random.default_rng(55)
        )
        accountant = PrivacyAccountant(alpha_target=1e-12)  # effectively infinite
        metered = StreamExecutor(plan, chunk_size=128, accountant=accountant).run(
            counts, rng=np.random.default_rng(55)
        )
        assert np.array_equal(metered, unmetered)

    def test_chunk_boundaries_match_per_chunk_regime(self):
        plan = self._plan()
        counts = np.random.default_rng(11).integers(0, 41, size=1000)
        executor = StreamExecutor(plan, chunk_size=64)
        sizes = [c.shape[0] for c in executor.stream(counts, rng=np.random.default_rng(1))]
        assert sizes == [64] * 15 + [40]
        assert executor.stats.chunks == 16
        assert executor.stats.records == 1000

    def test_window_validation_precedes_any_draw(self):
        plan = self._plan(n=10)
        executor = StreamExecutor(plan, chunk_size=4)
        rng = np.random.default_rng(77)
        probe = np.random.default_rng(77)
        stream = executor.stream([1, 2, 3, 99], rng=rng)
        with pytest.raises(ValueError, match="must lie in"):
            next(stream)
        # The refused window consumed nothing from the shared stream.
        assert rng.random() == probe.random()


class TestIterCountChunksZeroCopy:
    def test_copy_false_yields_reused_buffer(self):
        source = (np.arange(4) + 10 * i for i in range(3))
        chunks = iter_count_chunks(source, 4, copy=False)
        first = next(chunks)
        first_snapshot = first.copy()
        second = next(chunks)
        # Same backing buffer: advancing the iterator rewrote the first view.
        assert second is first
        assert not np.array_equal(first, first_snapshot)

    def test_copy_true_yields_stable_chunks(self):
        source = (np.arange(4) + 10 * i for i in range(3))
        chunks = list(iter_count_chunks(source, 4, copy=True))
        assert [c[0] for c in chunks] == [0, 10, 20]

    def test_ndarray_source_yields_views(self):
        counts = np.arange(10)
        chunks = list(iter_count_chunks(counts, 4))
        assert all(c.base is counts for c in chunks)


# --------------------------------------------------------------------- #
# Binary stream I/O
# --------------------------------------------------------------------- #
class TestStreamIO:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "counts.npy"
        values = np.random.default_rng(0).integers(0, 100, size=1234)
        with NpyCountWriter(path) as writer:
            for start in range(0, 1234, 100):
                writer.write(values[start : start + 100])
        loaded = open_npy_counts(path)
        assert np.array_equal(loaded, values)
        assert loaded.dtype == COUNT_DTYPE
        # And numpy's own loader agrees on the file being well-formed.
        assert np.array_equal(np.load(path), values)

    def test_partial_file_is_loadable_after_every_flush(self, tmp_path):
        path = tmp_path / "partial.npy"
        writer = NpyCountWriter(path)
        writer.write(np.arange(5))
        writer.close()
        assert np.array_equal(np.load(path), np.arange(5))

    def test_empty_file_is_loadable(self, tmp_path):
        path = tmp_path / "empty.npy"
        with NpyCountWriter(path):
            pass
        assert np.load(path).shape == (0,)

    def test_writer_rejects_2d_and_closed_writes(self, tmp_path):
        writer = NpyCountWriter(tmp_path / "x.npy")
        with pytest.raises(ValueError, match="1-D"):
            writer.write(np.zeros((2, 2), dtype=int))
        writer.close()
        writer.close()  # idempotent
        with pytest.raises(ValueError, match="closed"):
            writer.write(np.zeros(1, dtype=int))

    def test_open_rejects_2d_and_float_files(self, tmp_path):
        two_d = tmp_path / "2d.npy"
        np.save(two_d, np.zeros((3, 3), dtype=int))
        with pytest.raises(ValueError, match="1-D"):
            open_npy_counts(two_d)
        floats = tmp_path / "float.npy"
        np.save(floats, np.zeros(3))
        with pytest.raises(ValueError, match="integer dtype"):
            open_npy_counts(floats)

    def test_open_is_memory_mapped(self, tmp_path):
        path = tmp_path / "mmap.npy"
        np.save(path, np.arange(100))
        loaded = open_npy_counts(path)
        assert isinstance(loaded, np.memmap)

    def test_is_npy_path(self):
        assert is_npy_path("counts.npy")
        assert is_npy_path("COUNTS.NPY")
        assert not is_npy_path("counts.txt")
        assert not is_npy_path("-")
        assert not is_npy_path(None)
