"""Tests for the experiment runner (repro.experiments.runner)."""

from __future__ import annotations

import pytest

from repro.experiments import runner
from repro.experiments.base import ExperimentResult


class TestRunner:
    def test_available_experiments_lists_all_figures(self):
        names = runner.available_experiments()
        assert names == [
            "figure-1",
            "figure-2",
            "figure-6",
            "figure-7",
            "figure-8",
            "figure-9",
            "figure-10",
            "figure-11",
            "figure-12",
            "figure-13",
            "extension-output-dp",
            "extension-l1-l2",
            "extension-range-queries",
        ]
        # Every figure of the paper's evaluation has a runner entry, and the
        # fast profile covers exactly the same set.
        assert set(runner._fast_settings()) == set(names)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            runner.run_experiments(names=["figure-42"], fast=True, verbose=False)

    def test_selected_fast_experiments_run_and_return_results(self, capsys):
        results = runner.run_experiments(names=["figure-6", "figure-7"], fast=True, verbose=True)
        assert set(results) == {"figure-6", "figure-7"}
        assert all(isinstance(result, ExperimentResult) for result in results.values())
        captured = capsys.readouterr()
        assert "figure-6" in captured.out

    def test_csv_output_written(self, tmp_path):
        runner.run_experiments(
            names=["figure-6"], fast=True, verbose=False, csv_dir=tmp_path / "csv"
        )
        assert (tmp_path / "csv" / "figure-6.csv").exists()


class TestExperimentResultHelpers:
    def test_series_and_filter(self):
        result = ExperimentResult(
            experiment="demo",
            description="demo rows",
            rows=[
                {"mechanism": "GM", "x": 1, "y": 0.3},
                {"mechanism": "GM", "x": 2, "y": 0.4},
                {"mechanism": "EM", "x": 1, "y": 0.2},
            ],
        )
        series = result.series(x="x", y="y")
        assert series["GM"] == [(1, 0.3), (2, 0.4)]
        assert result.filter_rows(mechanism="EM") == [{"mechanism": "EM", "x": 1, "y": 0.2}]

    def test_summary_includes_string_artefacts(self):
        result = ExperimentResult(
            experiment="demo",
            description="demo rows",
            rows=[{"a": 1}],
            artefacts={"note": "hello artefact", "object": 42},
        )
        summary = result.summary()
        assert "hello artefact" in summary
        assert "demo" in summary

    def test_to_csv(self, tmp_path):
        result = ExperimentResult(experiment="demo", description="", rows=[{"a": 1, "b": 2}])
        text = result.to_csv(path=tmp_path / "demo.csv")
        assert (tmp_path / "demo.csv").read_text() == text
        assert "a,b" in text
