"""Shared fixtures for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mechanisms.fair import explicit_fair_mechanism
from repro.mechanisms.geometric import geometric_mechanism
from repro.mechanisms.uniform import uniform_mechanism


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for reproducible tests."""
    return np.random.default_rng(20180416)


@pytest.fixture
def gm_small():
    """GM for a small group at the paper's Figure-7 setting."""
    return geometric_mechanism(4, 0.9)


@pytest.fixture
def em_small():
    """EM for a small group at the paper's Figure-7 setting."""
    return explicit_fair_mechanism(4, 0.9)


@pytest.fixture
def um_small():
    """UM for a small group."""
    return uniform_mechanism(4)


#: (n, alpha) pairs covering odd/even group sizes and weak/strong privacy;
#: used by parametrised tests across several modules.
STANDARD_SETTINGS = [
    (2, 0.5),
    (3, 0.62),
    (4, 0.9),
    (5, 0.3),
    (7, 0.62),
    (8, 0.91),
    (12, 0.67),
    (15, 0.99),
]
