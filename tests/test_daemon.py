"""The serving daemon: coalescing identity, budget shedding, lifecycle.

The load-bearing claims of the daemon (see ``src/repro/serving/daemon.py``):

* a coalesced batch — same-plan requests from *different tenants* merged
  into one vectorised draw — releases counts **bit-identical** to serving
  each request alone on the same stream, for every mechanism
  representation (dense, closed-form, sparse);
* an over-budget tenant is shed from the batch *before* any sampling
  (consuming its substream spawn but zero uniforms) and never perturbs the
  other tenants' outputs;
* per-tenant spend is charged exactly once per served request, no matter
  how requests interleave across connections;
* graceful shutdown answers every admitted request before the process
  exits.
"""

from __future__ import annotations

import asyncio
import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.selector import choose_mechanism
from repro.engine.plan import ReleasePlan
from repro.serving import AsyncDaemonClient, ServingDaemon
from repro.serving.cache import design_key
from repro.serving.protocol import (
    ERROR,
    OK,
    REFUSED,
    ProtocolError,
    decode_message,
    encode_message,
    parse_release,
    tenant_seed_sequence,
)

SEED = 20180416


def run(coroutine):
    """Tests drive asyncio directly (pytest-asyncio is not a dependency)."""
    return asyncio.run(coroutine)


async def _start_daemon(**kwargs) -> ServingDaemon:
    kwargs.setdefault("seed", SEED)
    daemon = ServingDaemon(**kwargs)
    await daemon.start(port=0)
    return daemon


async def _one_release(daemon, tenant, counts, n, alpha, properties="", **hello):
    client = await AsyncDaemonClient.connect(host="127.0.0.1", port=daemon.port)
    try:
        await client.hello(tenant, **hello)
        return await client.release(counts, n=n, alpha=alpha, properties=properties)
    finally:
        await client.close()


async def _serve_workload(workload, batch_window_ms, *, daemon_kwargs=None, plans=None):
    """Serve one release per tenant concurrently; returns {tenant: response}.

    ``plans`` optionally pre-seeds the daemon's shared plans-LRU (used to
    route requests through a specific mechanism representation).
    """
    daemon = await _start_daemon(
        batch_window_ms=batch_window_ms, **(daemon_kwargs or {})
    )
    if plans:
        daemon._plans.update(plans)
    responses = {}

    async def drive(tenant, counts, n, alpha, properties):
        responses[tenant] = await _one_release(
            daemon, tenant, counts, n, alpha, properties
        )

    try:
        await asyncio.gather(*(drive(*item) for item in workload))
    finally:
        await daemon.stop()
    return responses, daemon


def _engine_reference(tenant, counts, n, alpha, properties, requests_before=0):
    """What serial per-request serving must release for this tenant.

    The tenant's ``k``-th request samples from the ``k``-th spawn of its
    substream root — the daemon's admission-order discipline.
    """
    plan = ReleasePlan.compile(n, alpha, properties=properties)
    root = tenant_seed_sequence(tenant, server_seed=SEED)
    child = root.spawn(requests_before + 1)[requests_before]
    return [
        int(v)
        for v in plan.execute(np.asarray(counts), rng=np.random.default_rng(child))
    ]


class TestCoalescingIdentity:
    """Coalesced == serial == engine, bit for bit, per representation."""

    WORKLOADS = {
        # branch -> (properties, n, alpha); GM/EM resolve to closed-form
        # mechanisms, WM to sparse CSC storage (representation="auto").
        "closed": ("", 40, 0.5),
        "sparse": ("WH+CM", 12, 0.9),
    }

    @pytest.mark.parametrize("branch", sorted(WORKLOADS))
    def test_coalesced_matches_serial_and_engine(self, branch):
        properties, n, alpha = self.WORKLOADS[branch]
        rng = np.random.default_rng(7)
        workload = [
            (f"tenant-{i}", [int(c) for c in rng.integers(0, n + 1, size=3 + i)],
             n, alpha, properties)
            for i in range(4)
        ]
        coalesced, daemon = run(_serve_workload(workload, batch_window_ms=200.0))
        serial, _ = run(_serve_workload(workload, batch_window_ms=0.0))

        expected_repr = {"closed": "closed-form", "sparse": "sparse"}[branch]
        (plan,) = daemon._plans.values()
        assert plan.mechanism.representation == expected_repr

        # At least one flush actually merged multiple tenants.
        assert daemon.stats.coalesced_requests > 0
        for tenant, counts, n_, alpha_, props in workload:
            assert coalesced[tenant]["code"] == OK
            assert (
                coalesced[tenant]["released"] == serial[tenant]["released"]
            ), f"{tenant}: coalesced differs from per-request serving"
            assert coalesced[tenant]["released"] == _engine_reference(
                tenant, counts, n_, alpha_, props
            ), f"{tenant}: daemon differs from the engine on the same stream"

    def test_dense_plan_identity(self):
        """Dense mechanisms coalesce identically (plan injected into the LRU).

        ``representation="auto"`` stores LP designs sparsely, so the dense
        path is exercised by pre-seeding the daemon's shared plans-LRU with
        a dense-wrapped WM — exactly what a cache warmed by an older dense
        artifact would hold.
        """
        n, alpha, properties = 10, 0.9, "WH+CM"
        mechanism, decision = choose_mechanism(
            n, alpha, properties=properties, representation="dense"
        )
        key = design_key(n, alpha, properties, None, "scipy")
        assert mechanism.representation == "dense"

        def plans():
            return {
                key: ReleasePlan(
                    mechanism, decision=decision, alpha_cost=alpha, key=key
                )
            }

        workload = [
            ("dense-a", [0, 3, 10], n, alpha, properties),
            ("dense-b", [5, 5], n, alpha, properties),
            ("dense-c", [7], n, alpha, properties),
        ]
        coalesced, daemon = run(
            _serve_workload(workload, batch_window_ms=200.0, plans=plans())
        )
        serial, _ = run(
            _serve_workload(workload, batch_window_ms=0.0, plans=plans())
        )
        (plan,) = daemon._plans.values()
        assert plan.mechanism.representation == "dense"
        assert daemon.stats.coalesced_requests > 0
        for tenant, counts, *_ in workload:
            assert coalesced[tenant]["code"] == OK
            assert coalesced[tenant]["released"] == serial[tenant]["released"]

    def test_multiple_requests_per_tenant_keep_arrival_order(self):
        """Request k of a tenant samples from spawn k, batched or not."""

        async def scenario(window):
            daemon = await _start_daemon(batch_window_ms=window)
            client = await AsyncDaemonClient.connect(
                host="127.0.0.1", port=daemon.port
            )
            await client.hello("repeat")
            first = await client.release([1, 2], n=8, alpha=0.8)
            second = await client.release([3, 4], n=8, alpha=0.8)
            await client.close()
            await daemon.stop()
            return first["released"], second["released"]

        batched = run(scenario(50.0))
        serial = run(scenario(0.0))
        assert batched == serial
        assert batched[0] == _engine_reference("repeat", [1, 2], 8, 0.8, "")
        assert batched[1] == _engine_reference(
            "repeat", [3, 4], 8, 0.8, "", requests_before=1
        )


class TestBudgetShedding:
    def test_over_budget_tenant_shed_before_sampling(self):
        """A shed tenant gets code 1, spends nothing and perturbs nobody.

        The rng-probe: the surviving tenant's output in the *same coalesced
        batch* as the refusal must equal the engine reference on its own
        stream — possible only if the refused request consumed zero
        uniforms before being shed.
        """
        n, alpha = 16, 0.9
        workload = [
            # budget 0.95 cannot cover even one alpha=0.9 release.
            ("broke", [1, 2, 3], n, alpha, ""),
            ("solvent", [4, 5, 6, 7], n, alpha, ""),
        ]

        async def scenario():
            daemon = await _start_daemon(batch_window_ms=200.0)
            responses = {}

            async def drive(tenant, counts, budget):
                responses[tenant] = await _one_release(
                    daemon, tenant, counts, n, alpha, budget_alpha=budget
                )

            await asyncio.gather(
                drive("broke", [1, 2, 3], 0.95), drive("solvent", [4, 5, 6, 7], 0.5)
            )
            stats = daemon.stats_payload()
            tenants = {
                name: session.payload() for name, session in daemon._tenants.items()
            }
            await daemon.stop()
            return responses, stats, tenants

        responses, stats, tenants = run(scenario())
        assert responses["broke"]["code"] == REFUSED
        assert "released" not in responses["broke"]
        assert responses["solvent"]["code"] == OK
        # Bit-identity across the shed: the survivor's draw is untouched.
        assert responses["solvent"]["released"] == _engine_reference(
            "solvent", [4, 5, 6, 7], n, alpha, ""
        )
        assert stats["budget"]["budget_refusals"] == 1
        assert tenants["broke"]["budget"]["alpha_spent"] == 1.0  # nothing charged
        assert tenants["broke"]["budget"]["releases"] == 0
        assert tenants["broke"]["budget"]["budget_refusals"] == 1
        assert tenants["solvent"]["budget"]["alpha_spent"] == pytest.approx(alpha)

    def test_refused_request_consumes_spawn_but_no_uniforms(self):
        """Spend pattern ok/refused/ok: the refusal burns spawn #2 only."""

        async def scenario():
            daemon = await _start_daemon(batch_window_ms=0.0)
            client = await AsyncDaemonClient.connect(
                host="127.0.0.1", port=daemon.port
            )
            await client.hello("meter", budget_alpha=0.5)
            first = await client.release([1], n=8, alpha=0.6)
            second = await client.release([2], n=8, alpha=0.7)  # 0.6*0.7 < 0.5
            third = await client.release([3], n=8, alpha=0.9)  # 0.6*0.9 >= 0.5
            await client.close()
            await daemon.stop()
            return first, second, third

        first, second, third = run(scenario())
        assert (first["code"], second["code"], third["code"]) == (OK, REFUSED, OK)
        assert first["released"] == _engine_reference("meter", [1], 8, 0.6, "")
        # The refused request consumed spawn #2, so the third request must
        # sample from spawn #3 — exactly as serial serving would.
        assert third["released"] == _engine_reference(
            "meter", [3], 8, 0.9, "", requests_before=2
        )

    def test_spend_charged_exactly_once_under_concurrency(self):
        """K concurrent connections of one tenant: exactly K charges."""
        n, alpha, connections = 8, 0.9, 5

        async def scenario():
            daemon = await _start_daemon(
                batch_window_ms=100.0, budget_alpha=0.5
            )

            async def drive(i):
                return await _one_release(daemon, "shared", [i], n, alpha)

            responses = await asyncio.gather(
                *(drive(i) for i in range(connections))
            )
            session = daemon._tenants["shared"]
            spent = session.accountant.spent_alpha()
            releases = len(session.accountant.history())
            await daemon.stop()
            return responses, spent, releases

        responses, spent, releases = run(scenario())
        assert all(r["code"] == OK for r in responses)
        assert releases == connections
        assert spent == pytest.approx(alpha**connections)


class TestLifecycle:
    def test_graceful_shutdown_flushes_inflight_requests(self):
        """Requests held by the batch window are answered on shutdown."""

        async def scenario():
            # Window far longer than the test: only shutdown can flush.
            daemon = await _start_daemon(batch_window_ms=30_000.0)
            clients = []
            for name in ("held-a", "held-b"):
                client = await AsyncDaemonClient.connect(
                    host="127.0.0.1", port=daemon.port
                )
                await client.hello(name)
                clients.append(client)
            # A third idle connection keeps pending < connections, so the
            # two releases below sit in the batcher waiting on the window.
            idle = await AsyncDaemonClient.connect(
                host="127.0.0.1", port=daemon.port
            )
            pending = [
                asyncio.create_task(
                    client.release([1, 2], n=8, alpha=0.8)
                )
                for client in clients
            ]
            await asyncio.sleep(0.05)
            assert len(daemon._pending) == 2  # held by the window
            await daemon.stop()
            responses = await asyncio.gather(*pending)
            for client in clients:
                await client.close()
            await idle.close()
            return responses

        responses = run(scenario())
        assert [r["code"] for r in responses] == [OK, OK]
        for name, response in zip(("held-a", "held-b"), responses):
            assert response["released"] == _engine_reference(
                name, [1, 2], 8, 0.8, ""
            )

    def test_shutdown_op_stops_the_daemon(self):
        async def scenario():
            daemon = await _start_daemon(batch_window_ms=0.0)
            client = await AsyncDaemonClient.connect(
                host="127.0.0.1", port=daemon.port
            )
            await client.hello("t")
            response = await client.shutdown()
            await client.close()
            await asyncio.wait_for(daemon.wait_closed(), timeout=5.0)
            return response

        assert run(scenario())["code"] == OK

    def test_shared_plan_compiles_once_across_tenants(self):
        n, alpha, properties = 12, 0.9, "WH+CM"
        workload = [
            (f"t{i}", [i], n, alpha, properties) for i in range(4)
        ]
        _, daemon = run(_serve_workload(workload, batch_window_ms=50.0))
        stats = daemon.stats_payload()
        assert stats["plans_compiled"] == 1
        assert stats["lp_solves"] == 1  # one WM solve serves all tenants
        cache = stats["cache"]
        assert cache["misses"] == 1
        assert stats["tenants"] == 4

    def test_tenant_limit_and_conflicting_hello(self):
        async def scenario():
            daemon = await _start_daemon(max_tenants=1, batch_window_ms=0.0)
            first = await AsyncDaemonClient.connect(
                host="127.0.0.1", port=daemon.port
            )
            assert (await first.hello("one", seed=3))["code"] == OK
            # Same tenant reconnecting with the same seed resumes.
            again = await AsyncDaemonClient.connect(
                host="127.0.0.1", port=daemon.port
            )
            assert (await again.hello("one", seed=3))["code"] == OK
            # Conflicting seed would fork the stream: refused.
            conflict = await again.hello("one", seed=4)
            # A second tenant exceeds the limit.
            overflow = await again.hello("two")
            await first.close()
            await again.close()
            await daemon.stop()
            return conflict, overflow

        conflict, overflow = run(scenario())
        assert conflict["code"] == ERROR and "seed" in conflict["error"]
        assert overflow["code"] == ERROR and "limit" in overflow["error"]


class TestProtocol:
    def test_malformed_requests_get_code_2_not_disconnects(self):
        async def scenario():
            daemon = await _start_daemon(batch_window_ms=0.0)
            client = await AsyncDaemonClient.connect(
                host="127.0.0.1", port=daemon.port
            )
            no_hello = await client.request(
                {"op": "release", "counts": [1], "n": 4, "alpha": 0.5}
            )
            bad_json = None
            client._writer.write(b"this is not json\n")
            await client._writer.drain()
            bad_json = decode_message(await client._reader.readline())
            await client.hello("t")
            unknown = await client.request({"op": "frobnicate"})
            out_of_range = await client.release([9], n=4, alpha=0.5, request_id=17)
            bad_props = await client.release(
                [1], n=4, alpha=0.5, properties="NOPE"
            )
            ok = await client.release([1], n=4, alpha=0.5)
            await client.close()
            stats = daemon.stats_payload()
            await daemon.stop()
            return no_hello, bad_json, unknown, out_of_range, bad_props, ok, stats

        no_hello, bad_json, unknown, out_of_range, bad_props, ok, stats = run(
            scenario()
        )
        for response in (no_hello, bad_json, unknown, out_of_range, bad_props):
            assert response["code"] == ERROR
        assert out_of_range["id"] == 17  # id echoed even on errors
        assert ok["code"] == OK  # the connection survived every error
        assert stats["protocol_errors"] == 5
        # Invalid requests never consume budget, spawns or request slots.
        assert stats["requests"] == 1

    def test_parse_release_validation(self):
        good = parse_release(
            {"counts": [0, 4], "n": 4, "alpha": 0.5, "properties": "F", "id": 2}
        )
        assert good.request_id == 2 and list(good.counts) == [0, 4]
        for bad in (
            {"counts": [], "n": 4, "alpha": 0.5},
            {"counts": [1], "alpha": 0.5},
            {"counts": [1], "n": 4},
            {"counts": [1], "n": 0, "alpha": 0.5},
            {"counts": [1], "n": 4, "alpha": 1.5},
            {"counts": [5], "n": 4, "alpha": 0.5},
            {"counts": [[1]], "n": 4, "alpha": 0.5},
            {"counts": [1], "n": 4, "alpha": 0.5, "properties": 3},
        ):
            with pytest.raises(ProtocolError):
                parse_release(bad)

    def test_message_round_trip(self):
        message = {"op": "release", "counts": [1, 2], "n": 4, "alpha": 0.5}
        assert decode_message(encode_message(message)) == message
        with pytest.raises(ProtocolError):
            decode_message(b"[1, 2, 3]\n")  # not an object

    def test_tenant_seed_sequence_disciplines(self):
        explicit = tenant_seed_sequence("a", server_seed=1, tenant_seed=9)
        assert explicit.entropy == 9
        derived_a = tenant_seed_sequence("a", server_seed=1)
        derived_b = tenant_seed_sequence("b", server_seed=1)
        assert derived_a.spawn_key != derived_b.spawn_key  # independent tenants
        again = tenant_seed_sequence("a", server_seed=1)
        assert (
            np.random.default_rng(derived_a).random()
            == np.random.default_rng(again).random()
        )  # reproducible across restarts


class TestCliServe:
    def test_unix_socket_end_to_end(self, tmp_path):
        """`repro-mechanisms serve` over a unix socket, driven by a client."""
        socket_path = tmp_path / "repro.sock"
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--unix-socket", str(socket_path),
                "--seed", str(SEED), "--batch-window-ms", "1",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            cwd=str(Path(__file__).resolve().parent.parent),
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        try:
            assert "serving on" in process.stdout.readline()

            async def drive():
                client = await AsyncDaemonClient.connect(path=socket_path)
                await client.hello("cli-tenant")
                response = await client.release([2, 6], n=8, alpha=0.8)
                await client.shutdown()
                await client.close()
                return response

            response = run(drive())
            assert response["code"] == OK
            assert response["released"] == _engine_reference(
                "cli-tenant", [2, 6], 8, 0.8, ""
            )
            assert process.wait(timeout=10) == 0
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup on failure
                process.kill()
                process.wait()


class TestStatsJson:
    def test_serve_batch_stats_json(self, capsys):
        from repro.cli import main

        assert main([
            "serve-batch", "--n", "8", "--alpha", "0.9", "--counts", "1", "5",
            "--seed", "0", "--budget-alpha", "0.5", "--stats-json",
        ]) == 0
        stats = json.loads(capsys.readouterr().err.strip())
        assert stats["command"] == "serve-batch"
        assert stats["records"] == 2
        assert stats["budget"]["alpha_target"] == 0.5
        assert stats["budget"]["alpha_spent"] == pytest.approx(0.9)
        assert stats["budget"]["budget_refusals"] == 0
        assert stats["cache"]["misses"] == 1
        assert stats["plans_compiled"] == 1

    def test_serve_stream_stats_json(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        counts = tmp_path / "counts.txt"
        counts.write_text("\n".join(str(i % 9) for i in range(100)) + "\n")
        out = tmp_path / "released.txt"
        assert main([
            "serve-stream", "--n", "8", "--alpha", "0.9",
            "--counts-file", str(counts), "--chunk-size", "32",
            "--seed", "1", "--output", str(out), "--stats-json",
        ]) == 0
        stats = json.loads(capsys.readouterr().err.strip())
        assert stats["command"] == "serve-stream"
        assert stats["records"] == 100
        assert stats["chunks"] == 4
        assert stats["budget"]["alpha_target"] is None  # unmetered
        assert stats["cache"] is not None
