"""Property-based (hypothesis) tests for the core invariants.

These cover the claims the paper proves for *all* parameter settings, not
just the handful of examples in the figures: GM and EM are valid α-DP
mechanisms for every (n, α); EM satisfies every structural property; the
closed-form scores match the matrices; symmetrisation (Theorem 1) preserves
privacy, properties and the trace; the property implication lattice holds on
arbitrary valid mechanisms; and the loss functions respect their defining
inequalities.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core.losses import l0_score, l0d_score, l1_score, l2_score
from repro.core.mechanism import Mechanism
from repro.core.properties import (
    check_all_properties,
    is_column_honest,
    is_column_monotone,
    is_row_honest,
    is_row_monotone,
    is_weakly_honest,
    satisfies_differential_privacy,
)
from repro.core.theory import em_l0_score, gm_l0_score, symmetrize
from repro.mechanisms.fair import explicit_fair_mechanism, fair_exponent_matrix
from repro.mechanisms.geometric import geometric_mechanism
from repro.mechanisms.staircase import staircase_mechanism
from repro.mechanisms.uniform import uniform_mechanism

#: Strategy for group sizes covering both parities and moderate sizes.
group_sizes = st.integers(min_value=1, max_value=16)
#: Strategy for interior privacy levels (avoiding the degenerate endpoints).
alphas = st.floats(min_value=0.05, max_value=0.99, allow_nan=False, allow_infinity=False)

RELAXED = settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])


def random_mechanism(data: st.DataObject, n: int) -> Mechanism:
    """Draw a random valid mechanism by mixing GM, EM and UM columns."""
    alpha = data.draw(alphas)
    weights = data.draw(
        st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=3, max_size=3)
    )
    assume(sum(weights) > 0)
    weights = np.asarray(weights) / sum(weights)
    mixture = (
        weights[0] * geometric_mechanism(n, alpha).matrix
        + weights[1] * explicit_fair_mechanism(n, alpha).matrix
        + weights[2] * uniform_mechanism(n).matrix
    )
    return Mechanism(mixture, name="mixture", alpha=alpha)


class TestNamedMechanismInvariants:
    @RELAXED
    @given(n=group_sizes, alpha=alphas)
    def test_gm_is_valid_and_exactly_alpha_private(self, n, alpha):
        gm = geometric_mechanism(n, alpha)
        assert np.allclose(gm.matrix.sum(axis=0), 1.0)
        assert satisfies_differential_privacy(gm, alpha, tolerance=1e-9)
        assert gm.max_alpha() == pytest.approx(alpha, abs=1e-9)

    @RELAXED
    @given(n=group_sizes, alpha=alphas)
    def test_em_is_valid_private_and_fully_constrained(self, n, alpha):
        em = explicit_fair_mechanism(n, alpha)
        assert np.allclose(em.matrix.sum(axis=0), 1.0)
        assert satisfies_differential_privacy(em, alpha, tolerance=1e-9)
        assert all(check_all_properties(em, tolerance=1e-9).values())

    @RELAXED
    @given(n=group_sizes, alpha=alphas)
    def test_closed_form_scores_match_matrices(self, n, alpha):
        assert l0_score(geometric_mechanism(n, alpha)) == pytest.approx(gm_l0_score(alpha))
        assert l0_score(explicit_fair_mechanism(n, alpha)) == pytest.approx(
            em_l0_score(n, alpha)
        )

    @RELAXED
    @given(n=group_sizes, alpha=alphas)
    def test_gm_no_worse_than_em_no_worse_than_um(self, n, alpha):
        assert gm_l0_score(alpha) <= em_l0_score(n, alpha) + 1e-12
        assert em_l0_score(n, alpha) <= 1.0 + 1e-12

    @RELAXED
    @given(n=group_sizes)
    def test_em_exponent_pattern_is_dp_compatible_and_balanced(self, n):
        exponents = fair_exponent_matrix(n)
        # Row-adjacent exponents differ by at most one (the DP condition) and
        # every column carries the same multiset of exponents (normalisation).
        assert np.max(np.abs(np.diff(exponents, axis=1))) <= 1
        reference = np.sort(exponents[:, 0])
        for j in range(n + 1):
            assert np.array_equal(np.sort(exponents[:, j]), reference)

    @RELAXED
    @given(n=st.integers(min_value=1, max_value=10), alpha=st.floats(0.1, 0.9), width=st.integers(1, 4))
    def test_staircase_is_valid_and_private(self, n, alpha, width):
        mechanism = staircase_mechanism(n, alpha, width=width)
        assert np.allclose(mechanism.matrix.sum(axis=0), 1.0)
        assert satisfies_differential_privacy(mechanism, alpha, tolerance=1e-9)


class TestTheorem1Symmetrisation:
    @RELAXED
    @given(data=st.data(), n=st.integers(min_value=2, max_value=10))
    def test_symmetrisation_preserves_everything(self, data, n):
        mechanism = random_mechanism(data, n)
        symmetric = symmetrize(mechanism.matrix)
        # Centro-symmetric, still a mechanism, same trace (hence same L0), and
        # at least as private as the original.
        assert np.allclose(symmetric, symmetric[::-1, ::-1])
        assert np.allclose(symmetric.sum(axis=0), 1.0)
        assert np.trace(symmetric) == pytest.approx(mechanism.trace)
        original_alpha = mechanism.max_alpha()
        assert Mechanism(symmetric).max_alpha() >= original_alpha - 1e-9

    @RELAXED
    @given(data=st.data(), n=st.integers(min_value=2, max_value=8))
    def test_symmetrisation_preserves_row_and_column_properties(self, data, n):
        mechanism = random_mechanism(data, n)
        before = check_all_properties(mechanism, tolerance=1e-9)
        after = check_all_properties(symmetrize(mechanism.matrix), tolerance=1e-7)
        for prop, held in before.items():
            if held:
                assert after[prop], prop


class TestImplicationLatticeOnRandomMechanisms:
    @RELAXED
    @given(data=st.data(), n=st.integers(min_value=2, max_value=10))
    def test_monotonicity_implies_honesty_implies_weak_honesty(self, data, n):
        mechanism = random_mechanism(data, n)
        if is_row_monotone(mechanism, tolerance=1e-12):
            assert is_row_honest(mechanism, tolerance=1e-9)
        if is_column_monotone(mechanism, tolerance=1e-12):
            assert is_column_honest(mechanism, tolerance=1e-9)
        if is_column_honest(mechanism, tolerance=1e-12):
            assert is_weakly_honest(mechanism, tolerance=1e-9)


class TestLossInvariants:
    @RELAXED
    @given(data=st.data(), n=st.integers(min_value=2, max_value=10))
    def test_l0d_is_monotone_in_d_and_bounded(self, data, n):
        mechanism = random_mechanism(data, n)
        values = [l0d_score(mechanism, d) for d in range(n + 1)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))
        assert values[-1] == pytest.approx(0.0, abs=1e-12)
        assert 0.0 <= values[0] <= (n + 1) / n + 1e-12

    @RELAXED
    @given(data=st.data(), n=st.integers(min_value=2, max_value=10))
    def test_l1_bounded_by_l2_relation(self, data, n):
        # Cauchy-Schwarz: E|X| <= sqrt(E[X^2]) for the error distribution.
        mechanism = random_mechanism(data, n)
        assert l1_score(mechanism) <= np.sqrt(l2_score(mechanism)) + 1e-12

    @RELAXED
    @given(data=st.data(), n=st.integers(min_value=2, max_value=10))
    def test_sampling_stays_in_range(self, data, n):
        mechanism = random_mechanism(data, n)
        rng = np.random.default_rng(0)
        draws = mechanism.sample(data.draw(st.integers(0, n)), rng=rng, size=200)
        assert draws.min() >= 0 and draws.max() <= n


class TestSerialisationRoundTrip:
    @RELAXED
    @given(data=st.data(), n=st.integers(min_value=2, max_value=8))
    def test_dict_round_trip_is_lossless(self, data, n):
        mechanism = random_mechanism(data, n)
        clone = Mechanism.from_dict(mechanism.to_dict())
        assert clone.allclose(mechanism, tolerance=1e-12)
