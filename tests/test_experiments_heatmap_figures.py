"""Tests for the Figure 1, 2, 6 and 7 experiment drivers."""

from __future__ import annotations

import pytest

from repro.core.losses import Objective, l0_score
from repro.core.theory import em_l0_score, gm_l0_score
from repro.experiments import (
    fig01_unconstrained,
    fig02_constrained,
    fig06_property_table,
    fig07_heatmaps,
)


class TestFigure1:
    @pytest.fixture(scope="class")
    def result(self):
        return fig01_unconstrained.run()

    def test_four_cases_reported(self, result):
        assert len(result.rows) == 4
        assert {row["case"] for row in result.rows} == {
            "L1, n=5",
            "L1, n=7",
            "L2, n=7",
            "L0 d=1, n=5",
        }

    def test_every_unconstrained_case_has_gaps(self, result):
        # The paper: "all these optimal mechanisms never report some outputs".
        assert all(row["num_gap_outputs"] > 0 for row in result.rows)
        assert all(row["has_gap"] for row in result.rows)

    def test_l1_n7_spikes_two_outputs(self, result):
        # For L1, n = 7 the paper reports two disproportionately heavy outputs
        # (the exact pair depends on which optimal vertex the solver returns).
        mechanism = result.artefacts["mechanism:L1, n=7"]
        heavy = (mechanism.matrix.mean(axis=1) >= 0.25).sum()
        assert heavy >= 2
        row = {r["case"]: r for r in result.rows}["L1, n=7"]
        assert row["spike_ratio"] > 2.0

    def test_l0d1_concentrates_mass_on_two_outputs(self, result):
        # The paper: >90% chance of reporting one of two outputs, whatever the input.
        mechanism = result.artefacts["mechanism:L0 d=1, n=5"]
        top_two = mechanism.matrix.mean(axis=1)
        top_two.sort()
        assert top_two[-2:].sum() > 0.7

    def test_heatmap_artefacts_rendered(self, result):
        assert any(key.startswith("heatmap:") for key in result.artefacts)
        assert "figure-1" in result.artefacts["heatmap:L1, n=5"]

    def test_table_rendering(self, result):
        table = result.to_table()
        assert "spike_ratio" in table

    def test_custom_cases(self):
        custom = fig01_unconstrained.run(cases=[("L1, n=3", 3, Objective.l1())])
        assert len(custom.rows) == 1
        assert custom.rows[0]["group_size"] == 3


class TestFigure2:
    @pytest.fixture(scope="class")
    def result(self):
        return fig02_constrained.run()

    def test_constraints_remove_gaps(self, result):
        assert all(row["num_gap_outputs"] == 0 for row in result.rows)
        assert all(not row["has_gap"] for row in result.rows)

    def test_constraints_reduce_spikes(self, result):
        unconstrained = fig01_unconstrained.run(include_heatmaps=False)
        constrained_by_case = {row["case"]: row["spike_ratio"] for row in result.rows}
        for row in unconstrained.rows:
            assert constrained_by_case[row["case"]] < row["spike_ratio"]

    def test_within_one_probability_is_substantial(self, result):
        # The paper quotes ~2/3 for the constrained L2 instance; we check the
        # qualitative claim that it is far above the unconstrained floor.
        for row in result.rows:
            assert row["min_within_1_probability"] > 0.5

    def test_experiment_label(self, result):
        assert result.experiment == "figure-2"


class TestFigure6:
    @pytest.fixture(scope="class")
    def result(self):
        return fig06_property_table.run(n=8, alpha=0.9)

    def test_four_named_mechanisms(self, result):
        assert [row["mechanism"] for row in result.rows] == ["GM", "WM", "EM", "UM"]

    def test_property_columns_match_figure6(self, result):
        by_name = {row["mechanism"]: row for row in result.rows}
        # GM: S, RM yes; F no.  EM and UM: everything yes.  WM: WH yes, F no.
        assert by_name["GM"]["S"] and by_name["GM"]["RM"] and not by_name["GM"]["F"]
        assert all(by_name["EM"][code] for code in ("S", "RM", "CM", "F", "WH"))
        assert all(by_name["UM"][code] for code in ("S", "RM", "CM", "F", "WH"))
        assert by_name["WM"]["WH"] and not by_name["WM"]["F"]

    def test_l0_columns_match_closed_forms(self, result):
        by_name = {row["mechanism"]: row for row in result.rows}
        assert by_name["GM"]["l0_measured"] == pytest.approx(gm_l0_score(0.9))
        assert by_name["EM"]["l0_measured"] == pytest.approx(em_l0_score(8, 0.9))
        assert by_name["UM"]["l0_measured"] == pytest.approx(1.0)
        assert (
            by_name["GM"]["l0_measured"]
            <= by_name["WM"]["l0_measured"] + 1e-9
            <= by_name["EM"]["l0_measured"] + 1e-7
        )


class TestFigure7:
    @pytest.fixture(scope="class")
    def result(self):
        return fig07_heatmaps.run()

    def test_truth_probabilities_match_paper(self, result):
        by_name = {row["mechanism"]: row for row in result.rows}
        # Paper: GM 0.238, EM 0.224 (to their rounding), GM > WM > ... > UM's 0.2.
        assert by_name["GM"]["truth_probability"] == pytest.approx(0.238, abs=0.01)
        assert by_name["EM"]["truth_probability"] == pytest.approx(0.224, abs=0.01)
        assert by_name["UM"]["truth_probability"] == pytest.approx(0.2)
        assert by_name["GM"]["truth_probability"] > by_name["EM"]["truth_probability"]

    def test_gm_concentrates_on_extremes_em_does_not(self, result):
        by_name = {row["mechanism"]: row for row in result.rows}
        assert by_name["GM"]["extreme_output_mass"] > by_name["EM"]["extreme_output_mass"]
        assert by_name["EM"]["within_1_mass"] > by_name["GM"]["within_1_mass"]

    def test_wm_sits_between_gm_and_em(self, result):
        by_name = {row["mechanism"]: row for row in result.rows}
        assert (
            by_name["EM"]["extreme_output_mass"]
            <= by_name["WM"]["extreme_output_mass"] + 1e-9
            <= by_name["GM"]["extreme_output_mass"] + 1e-9
        )

    def test_l0_ordering(self, result):
        by_name = {row["mechanism"]: row for row in result.rows}
        assert by_name["GM"]["l0_score"] <= by_name["WM"]["l0_score"] + 1e-9
        assert by_name["WM"]["l0_score"] <= by_name["EM"]["l0_score"] + 1e-7

    def test_heatmaps_present(self, result):
        for name in ("GM", "WM", "EM", "UM"):
            assert f"heatmap:{name}" in result.artefacts
