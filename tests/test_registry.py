"""The persistent plan registry: storage, recovery, concurrency, warm-starting.

Covers the tentpole guarantees of :mod:`repro.serving.registry`:

* round-trip storage with per-row checksums and key verification;
* corrupt-row -> miss -> re-solve recovery parity with the old disk tier;
* schema versioning (a future registry is refused, not misread);
* one-time import of legacy loose ``design-*.json`` directories;
* concurrent multi-process readers during writes (WAL mode);
* crash-mid-write atomicity via the existing ``FaultInjector`` sites;
* the nearest-neighbour index behind LP warm-starting, and the
  ``REPRO_NO_WARMSTART=1`` opt-out;
* the ``repro-mechanisms warm`` grid precompiler and its zero-LP-solve
  serving guarantee after a process restart.
"""

from __future__ import annotations

import json
import multiprocessing
import sqlite3

import numpy as np
import pytest

from repro.cli import main
from repro.engine import faults
from repro.engine.faults import InjectedCrash
from repro.engine.plan import ReleasePlan
from repro.lp.solver import solve_call_count
from repro.serving import DesignCache, PlanRegistry, design_key, warm_grid
from repro.serving.registry import RegistryVersionError, parse_design_key
from repro.serving.warm import GridError, parse_grid


@pytest.fixture
def no_ambient_faults(monkeypatch):
    """Isolate a test from any externally set REPRO_FAULTS sweep."""
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    faults.reset()
    yield
    faults.reset()


def _entry(key: str, payload: int = 0) -> dict:
    """A minimal well-formed registry entry (not materialisable, but stored)."""
    return {"key": key, "mechanism": {"i": payload}, "decision": {"i": payload}}


class TestPlanRegistry:
    def test_round_trip_and_contains(self, tmp_path):
        with PlanRegistry(tmp_path) as registry:
            key = design_key(8, 0.9, properties="WH+CM")
            assert registry.get(key) is None
            registry.put(key, _entry(key, 7))
            assert key in registry
            assert len(registry) == 1
            assert registry.get(key) == _entry(key, 7)
            assert list(registry.keys()) == [key]

    def test_put_replaces(self, tmp_path):
        with PlanRegistry(tmp_path) as registry:
            key = design_key(8, 0.9)
            registry.put(key, _entry(key, 1))
            registry.put(key, _entry(key, 2))
            assert len(registry) == 1
            assert registry.get(key)["mechanism"]["i"] == 2

    def test_corrupt_row_is_dropped_and_missed(self, tmp_path):
        with PlanRegistry(tmp_path) as registry:
            key = design_key(8, 0.9)
            registry.put(key, _entry(key))
            registry.corrupt_row(key)
            assert registry.get(key) is None  # checksum mismatch -> miss
            assert registry.corrupt_rows == 1
            assert key not in registry  # and the bad row was deleted

    def test_row_with_wrong_key_is_a_miss(self, tmp_path):
        # Simulates a stale or mis-keyed row: payload verifies but records
        # a different key than the one it is stored under.
        with PlanRegistry(tmp_path) as registry:
            key = design_key(8, 0.9)
            other = design_key(9, 0.9)
            registry.put(key, _entry(key))
            with registry._conn:
                registry._conn.execute(
                    "UPDATE plans SET key = ? WHERE key = ?", (other, key)
                )
            assert registry.get(other) is None
            assert registry.corrupt_rows == 1

    def test_refuses_future_schema_version(self, tmp_path):
        PlanRegistry(tmp_path).close()
        conn = sqlite3.connect(str(tmp_path / "registry.sqlite"))
        with conn:
            conn.execute(
                "UPDATE meta SET value = '99' WHERE key = 'schema_version'"
            )
        conn.close()
        with pytest.raises(RegistryVersionError):
            PlanRegistry(tmp_path)

    def test_unparseable_key_is_refused(self, tmp_path):
        with PlanRegistry(tmp_path) as registry:
            with pytest.raises(Exception):
                registry.put("not-a-design-key", _entry("not-a-design-key"))

    def test_clear_and_delete(self, tmp_path):
        with PlanRegistry(tmp_path) as registry:
            for alpha in (0.8, 0.9):
                key = design_key(8, alpha)
                registry.put(key, _entry(key))
            registry.delete(design_key(8, 0.8))
            assert len(registry) == 1
            registry.clear()
            assert len(registry) == 0


class TestParseDesignKey:
    def test_round_trip(self):
        key = design_key(12, 0.925, properties="WH+CM", backend="simplex")
        fields = parse_design_key(key)
        assert fields["n"] == 12
        assert fields["alpha"] == 0.925
        assert fields["props"] == "CM+WH"
        assert fields["backend"] == "simplex"

    def test_garbage_is_none(self):
        assert parse_design_key("garbage") is None
        assert parse_design_key("n=x|alpha=0.9|props=a|obj=b|backend=c") is None


class TestLegacyImport:
    def test_loose_json_imported_once_and_left_untouched(self, tmp_path):
        key = design_key(8, 0.9, properties="WH+CM")
        legacy = tmp_path / "design-0abc.json"
        legacy.write_text(json.dumps(_entry(key, 42)))
        broken = tmp_path / "design-dead.json"
        broken.write_text("{not json")  # skipped: was already a miss

        registry = PlanRegistry(tmp_path)
        assert registry.imported_legacy == 1
        assert registry.get(key) == _entry(key, 42)
        assert legacy.exists()  # loose files untouched (rollback-safe)
        registry.close()

        # The import is one-time: deleting the row and reopening does not
        # resurrect it from the loose file.
        registry = PlanRegistry(tmp_path)
        registry.delete(key)
        registry.close()
        registry = PlanRegistry(tmp_path)
        assert registry.get(key) is None
        assert registry.imported_legacy == 0
        registry.close()

    def test_legacy_cache_dir_serves_without_resolving(self, tmp_path):
        # End-to-end parity: a directory written by the old loose-file tier
        # keeps serving designs with zero LP solves through the registry.
        warm = DesignCache(directory=tmp_path / "fresh")
        warm.get_or_design(6, 0.9, properties="WH+CM")
        key = design_key(6, 0.9, properties="WH+CM")
        entry = warm.registry.get(key)
        legacy_dir = tmp_path / "legacy"
        legacy_dir.mkdir()
        (legacy_dir / "design-1234.json").write_text(json.dumps(entry))

        cache = DesignCache(directory=legacy_dir)
        before = solve_call_count()
        mechanism, _ = cache.get_or_design(6, 0.9, properties="WH+CM")
        assert solve_call_count() == before
        assert mechanism.metadata["design_cache"] == "disk"
        assert cache.stats().imported_legacy == 1


def _reader_task(args):
    """Spawned reader: hammer get() while the parent writes."""
    directory, keys, rounds = args
    hits = 0
    with PlanRegistry(directory) as registry:
        for _ in range(rounds):
            for key in keys:
                entry = registry.get(key)
                if entry is not None:
                    assert entry["key"] == key  # never a partial row
                    hits += 1
    return hits


class TestConcurrency:
    def test_multiprocess_readers_during_writes(self, tmp_path):
        keys = [design_key(8, round(0.5 + 0.01 * i, 3)) for i in range(20)]
        PlanRegistry(tmp_path).close()  # create the schema first
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(2) as pool:
            result = pool.map_async(
                _reader_task, [(str(tmp_path), keys, 40)] * 2
            )
            with PlanRegistry(tmp_path) as registry:
                for key in keys:
                    registry.put(key, _entry(key))
            hits = result.get(timeout=120)
        # Readers ran concurrently with the writes and every row they saw
        # verified; by the end all rows are durably visible.
        with PlanRegistry(tmp_path) as registry:
            assert len(registry) == len(keys)
            assert all(registry.get(key) is not None for key in keys)
        assert all(h >= 0 for h in hits)

    def test_two_writers_do_not_corrupt(self, tmp_path):
        first = PlanRegistry(tmp_path)
        second = PlanRegistry(tmp_path)
        for i, registry in enumerate((first, second) * 5):
            key = design_key(8, round(0.5 + 0.01 * i, 3))
            registry.put(key, _entry(key, i))
        assert len(first) == 10
        assert all(first.get(key) is not None for key in first.keys())
        first.close()
        second.close()


@pytest.mark.usefixtures("no_ambient_faults")
class TestRegistryFaults:
    def test_torn_store_rolls_back(self, tmp_path):
        key = design_key(8, 0.9)
        with PlanRegistry(tmp_path) as registry:
            with faults.injected("torn_cache"):
                with pytest.raises(InjectedCrash):
                    registry.put(key, _entry(key))
        with PlanRegistry(tmp_path) as registry:
            assert registry.get(key) is None  # clean miss after the "crash"
            registry.put(key, _entry(key))
            assert registry.get(key) is not None

    def test_io_error_raises_oserror(self, tmp_path):
        key = design_key(8, 0.9)
        with PlanRegistry(tmp_path) as registry:
            with faults.injected("io_error:1.0"):
                with pytest.raises(OSError):
                    registry.put(key, _entry(key))
            assert key not in registry


class TestNearestNeighbour:
    def test_nearest_on_the_alpha_axis(self, tmp_path):
        with PlanRegistry(tmp_path) as registry:
            for alpha in (0.5, 0.8, 0.95):
                key = design_key(8, alpha, properties="WH+CM", backend="simplex")
                registry.put(key, _entry(key, int(alpha * 100)))
            hit = registry.nearest(8, "CM+WH", "L0-default", "simplex", 0.9)
            assert hit is not None
            neighbour_alpha, entry = hit
            assert neighbour_alpha == 0.95
            assert entry["mechanism"]["i"] == 95

    def test_nearest_skips_corrupt_and_excluded(self, tmp_path):
        with PlanRegistry(tmp_path) as registry:
            near = design_key(8, 0.91, properties="WH+CM", backend="simplex")
            far = design_key(8, 0.7, properties="WH+CM", backend="simplex")
            registry.put(near, _entry(near, 91))
            registry.put(far, _entry(far, 70))
            registry.corrupt_row(near)
            hit = registry.nearest(8, "CM+WH", "L0-default", "simplex", 0.9)
            assert hit is not None and hit[0] == 0.7
            assert registry.corrupt_rows == 1
            # Excluding the only remaining row finds nothing.
            assert (
                registry.nearest(8, "CM+WH", "L0-default", "simplex", 0.9, exclude_key=far)
                is None
            )

    def test_no_cross_group_neighbours(self, tmp_path):
        with PlanRegistry(tmp_path) as registry:
            other = design_key(16, 0.9, properties="WH+CM", backend="simplex")
            registry.put(other, _entry(other))
            assert registry.nearest(8, "CM+WH", "L0-default", "simplex", 0.9) is None


class TestWarmStartingThroughCache:
    def test_neighbour_warm_start_matches_cold_objective(self, tmp_path):
        cache = DesignCache(directory=tmp_path)
        seed, _ = cache.get_or_design(8, 0.9, properties="WH+CM", backend="simplex")
        assert seed.metadata.get("lp_basis")  # basis persisted for neighbours
        warm, _ = cache.get_or_design(8, 0.95, properties="WH+CM", backend="simplex")
        stats = cache.stats()
        assert stats.warm_attempts == 1
        assert stats.warm_hits == 1
        assert stats.warm_fallbacks == 0
        assert warm.metadata.get("lp_warm_started") is True

        cold, _ = DesignCache().get_or_design(
            8, 0.95, properties="WH+CM", backend="simplex"
        )
        assert warm.metadata["objective_value"] == pytest.approx(
            cold.metadata["objective_value"], abs=1e-9
        )
        # The warm solution is a real mechanism: each input's output
        # distribution (a column in this convention) sums to one.
        matrix = np.asarray(warm.matrix, dtype=float)
        assert np.all(matrix >= -1e-12)
        np.testing.assert_allclose(matrix.sum(axis=0), 1.0, atol=1e-9)

    def test_scipy_rows_never_seed_warm_starts(self, tmp_path):
        cache = DesignCache(directory=tmp_path)
        cache.get_or_design(8, 0.9, properties="WH+CM", backend="scipy")
        cache.get_or_design(8, 0.95, properties="WH+CM", backend="scipy")
        stats = cache.stats()
        assert stats.warm_attempts == 0  # no basis interface, no attempts

    def test_no_warmstart_env_disables_attempts(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_WARMSTART", "1")
        cache = DesignCache(directory=tmp_path)
        cache.get_or_design(8, 0.9, properties="WH+CM", backend="simplex")
        cache.get_or_design(8, 0.95, properties="WH+CM", backend="simplex")
        assert cache.stats().warm_attempts == 0


class TestWarmGrid:
    def test_parse_grid(self):
        axes = parse_grid(["n=8,16", "alpha=0.9,0.95", "props=WH+CM,none"])
        assert axes == {
            "n": [8, 16],
            "alpha": [0.9, 0.95],
            "props": ["WH+CM", "none"],
        }
        with pytest.raises(GridError):
            parse_grid(["n=8"])  # missing alpha axis
        with pytest.raises(GridError):
            parse_grid(["n=8", "alpha=0.9", "bogus=1"])
        with pytest.raises(GridError):
            parse_grid(["n=eight", "alpha=0.9"])

    def test_warm_grid_fills_registry_and_is_idempotent(self, tmp_path):
        summary = warm_grid(
            tmp_path, ns=[6, 8], alphas=[0.9, 0.95], backend="simplex"
        )
        assert summary["grid_points"] == 4
        assert summary["solved"] == 4
        assert summary["skipped"] == 0
        assert summary["warm_started"] >= 1  # alphas chain within a group
        again = warm_grid(tmp_path, ns=[6, 8], alphas=[0.9, 0.95], backend="simplex")
        assert again["solved"] == 0
        assert again["skipped"] == 4

    def test_warmed_registry_serves_with_zero_solves(self, tmp_path):
        warm_grid(tmp_path, ns=[6], alphas=[0.9, 0.95], backend="simplex")
        cache = DesignCache(directory=tmp_path)
        before = solve_call_count()
        for alpha in (0.9, 0.95):
            plan = ReleasePlan.compile(
                6, alpha, properties="WH+CM", backend="simplex", cache=cache
            )
            descriptor = plan.descriptor()
            assert descriptor["n"] == 6
            assert descriptor["alpha"] == alpha
            assert descriptor["key"] in cache.registry
        assert solve_call_count() == before

    def test_warm_cli_round_trip(self, tmp_path, capsys):
        exit_code = main(
            [
                "warm",
                "--cache-dir",
                str(tmp_path),
                "--grid",
                "n=6",
                "alpha=0.9,0.95",
                "props=WH+CM",
                "--backend",
                "simplex",
                "--stats-json",
            ]
        )
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "2 solved" in captured.out
        summary = json.loads(captured.err.strip().splitlines()[-1])
        assert summary["command"] == "warm"
        assert summary["registry_entries"] == 2
