"""Tests for post-processing transformations (repro.core.transformations)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.losses import Objective, l0_score, l1_score, objective_value
from repro.core.theory import gupte_sundararajan_derivable
from repro.core.transformations import derive_from_geometric, optimal_remap, post_process
from repro.mechanisms.fair import explicit_fair_mechanism
from repro.mechanisms.geometric import geometric_mechanism
from repro.mechanisms.uniform import uniform_mechanism


class TestPostProcess:
    def test_identity_remap_is_a_no_op(self, gm_small):
        processed = post_process(gm_small, np.eye(gm_small.size))
        assert processed.allclose(gm_small)
        assert processed.metadata["post_processed_from"] == "GM"

    def test_constant_remap_destroys_information_but_not_privacy(self, gm_small):
        # Map every base output to a uniform release: the composite is UM.
        remap = np.full((gm_small.size, gm_small.size), 1.0 / gm_small.size)
        processed = post_process(gm_small, remap)
        assert processed.allclose(uniform_mechanism(gm_small.n))
        assert processed.max_alpha() == pytest.approx(1.0)

    def test_post_processing_never_weakens_privacy(self, rng):
        gm = geometric_mechanism(5, 0.8)
        # Random column-stochastic remap.
        raw = rng.random((6, 6)) + 0.01
        remap = raw / raw.sum(axis=0, keepdims=True)
        processed = post_process(gm, remap)
        assert processed.max_alpha() >= gm.max_alpha() - 1e-9

    def test_remap_validation(self, gm_small):
        with pytest.raises(ValueError):
            post_process(gm_small, np.ones((2, gm_small.size)))  # wrong output range
        bad_columns = np.eye(gm_small.size) * 0.5
        with pytest.raises(ValueError):
            post_process(gm_small, bad_columns)  # columns do not sum to one
        negative = np.eye(gm_small.size)
        negative[0, 1] = -0.5
        negative[1, 1] = 1.5
        with pytest.raises(ValueError):
            post_process(gm_small, negative)


class TestOptimalRemap:
    def test_uniform_prior_l0_keeps_gm_optimal(self):
        # Theorem 3: GM is already optimal, so the best remap cannot improve it
        # and the derived mechanism has the same L0 score.
        n, alpha = 5, 0.7
        derived = derive_from_geometric(n, alpha)
        assert l0_score(derived) == pytest.approx(l0_score(geometric_mechanism(n, alpha)), abs=1e-7)

    def test_skewed_prior_improves_expected_loss(self):
        n, alpha = 6, 0.8
        prior = np.array([0.7, 0.1, 0.05, 0.05, 0.05, 0.03, 0.02])
        objective = Objective(p=0, weights=prior)
        gm = geometric_mechanism(n, alpha)
        derived = derive_from_geometric(n, alpha, objective=objective)
        assert objective_value(derived, objective) <= objective_value(gm, objective) + 1e-9

    def test_derived_mechanism_is_dp_and_gs_derivable(self):
        n, alpha = 5, 0.8
        prior = np.array([0.5, 0.2, 0.1, 0.1, 0.05, 0.05])
        derived = derive_from_geometric(n, alpha, objective=Objective(p=1, weights=prior))
        assert derived.max_alpha() >= alpha - 1e-9
        assert gupte_sundararajan_derivable(derived, alpha, tolerance=1e-7)

    def test_em_is_not_reachable_by_remapping_gm(self):
        # The best remap of GM towards EM's own objective still cannot be EM
        # (Section IV-D): EM fails the derivability test, the remap passes it.
        n, alpha = 4, 0.9
        em = explicit_fair_mechanism(n, alpha)
        derived = derive_from_geometric(n, alpha)
        assert not em.allclose(derived)
        assert not gupte_sundararajan_derivable(em, alpha)

    def test_remap_is_column_stochastic(self):
        remap = optimal_remap(geometric_mechanism(4, 0.6), objective=Objective.l1())
        assert remap.shape == (5, 5)
        assert np.allclose(remap.sum(axis=0), 1.0)
        assert remap.min() >= 0.0

    def test_l1_remap_with_point_prior_collapses_to_map_estimate(self):
        # With all prior mass on input 0 the optimal remap releases the value
        # that minimises expected |k - 0| under GM's column 0 - i.e. it pulls
        # everything towards 0, and the composite has tiny L1 loss at j = 0.
        n, alpha = 5, 0.6
        prior = np.zeros(n + 1)
        prior[0] = 1.0
        derived = derive_from_geometric(n, alpha, objective=Objective(p=1, weights=prior))
        per_input = (np.abs(np.arange(n + 1)[:, None] - np.arange(n + 1)[None, :]) * derived.matrix).sum(axis=0)
        assert per_input[0] <= l1_score(geometric_mechanism(n, alpha)) + 1e-9

    def test_minimax_objective_rejected(self):
        with pytest.raises(ValueError):
            optimal_remap(geometric_mechanism(3, 0.5), objective=Objective.minimax())

    def test_simplex_backend_supported(self):
        remap = optimal_remap(geometric_mechanism(3, 0.7), backend="simplex")
        assert np.allclose(remap.sum(axis=0), 1.0)
