"""Tests for the synthetic data generators (repro.data.synthetic)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import (
    bernoulli_population,
    biased_and_balanced_probabilities,
    binomial_group_counts,
    groups_from_population,
    population_to_groups,
    skewed_probabilities,
    true_count_histogram,
)


class TestBernoulliPopulation:
    def test_values_are_bits(self, rng):
        bits = bernoulli_population(1000, 0.3, rng=rng)
        assert set(np.unique(bits)) <= {0, 1}
        assert bits.shape == (1000,)

    def test_mean_close_to_p(self, rng):
        bits = bernoulli_population(50_000, 0.3, rng=rng)
        assert bits.mean() == pytest.approx(0.3, abs=0.01)

    def test_extreme_probabilities(self, rng):
        assert bernoulli_population(100, 0.0, rng=rng).sum() == 0
        assert bernoulli_population(100, 1.0, rng=rng).sum() == 100

    def test_invalid_arguments(self, rng):
        with pytest.raises(ValueError):
            bernoulli_population(-1, 0.5, rng=rng)
        with pytest.raises(ValueError):
            bernoulli_population(10, 1.5, rng=rng)


class TestGrouping:
    def test_population_to_groups_sums_consecutive_blocks(self):
        bits = np.array([1, 0, 1, 1, 1, 0, 0, 0, 1])
        counts = population_to_groups(bits, 3)
        assert counts.tolist() == [2, 2, 1]

    def test_partial_group_dropped(self):
        bits = np.ones(10, dtype=int)
        counts = population_to_groups(bits, 4)
        assert counts.tolist() == [4, 4]

    def test_empty_result_when_population_smaller_than_group(self):
        assert population_to_groups(np.ones(2, dtype=int), 5).size == 0

    def test_rejects_non_binary_input(self):
        with pytest.raises(ValueError):
            population_to_groups(np.array([0, 2, 1]), 2)

    def test_rejects_invalid_group_size(self):
        with pytest.raises(ValueError):
            population_to_groups(np.ones(4, dtype=int), 0)


class TestBinomialCounts:
    def test_counts_within_range(self, rng):
        counts = binomial_group_counts(500, 8, 0.4, rng=rng)
        assert counts.min() >= 0 and counts.max() <= 8
        assert counts.shape == (500,)

    def test_mean_matches_np(self, rng):
        counts = binomial_group_counts(20_000, 10, 0.25, rng=rng)
        assert counts.mean() == pytest.approx(2.5, abs=0.05)

    def test_matches_population_route_in_distribution(self, rng):
        # Both construction routes must produce the same distribution of counts.
        direct = binomial_group_counts(5000, 6, 0.5, rng=np.random.default_rng(1))
        via_population = groups_from_population(30_000, 6, 0.5, rng=np.random.default_rng(2))
        assert direct.mean() == pytest.approx(via_population.mean(), abs=0.1)
        assert direct.std() == pytest.approx(via_population.std(), abs=0.1)

    def test_invalid_arguments(self, rng):
        with pytest.raises(ValueError):
            binomial_group_counts(-1, 4, 0.5, rng=rng)
        with pytest.raises(ValueError):
            binomial_group_counts(10, 0, 0.5, rng=rng)
        with pytest.raises(ValueError):
            binomial_group_counts(10, 4, 1.5, rng=rng)


class TestProbabilitySweeps:
    def test_skewed_probabilities_default(self):
        values = skewed_probabilities(9)
        assert values == pytest.approx([0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9])

    def test_skewed_probabilities_excludes_endpoints(self):
        values = skewed_probabilities(3)
        assert all(0.0 < value < 1.0 for value in values)

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            skewed_probabilities(0)

    def test_named_regimes(self):
        regimes = biased_and_balanced_probabilities()
        assert set(regimes) == {"balanced", "moderate", "biased"}
        assert all(0.0 < p < 1.0 for values in regimes.values() for p in values)


class TestHistogram:
    def test_histogram_sums_to_one(self):
        histogram = true_count_histogram([0, 1, 1, 2, 4], group_size=4)
        assert histogram.shape == (5,)
        assert histogram.sum() == pytest.approx(1.0)
        assert histogram[1] == pytest.approx(0.4)

    def test_rejects_out_of_range_counts(self):
        with pytest.raises(ValueError):
            true_count_histogram([5], group_size=4)
