"""Property-based sampling invariants across all three representations.

``tests/test_property_based.py`` covers the paper's *mathematical* claims;
this module covers the *sampling contract* the engine relies on, for random
``(n, alpha)`` and all three representations of the same mechanism (dense
matrix, closed form, sparse):

* every column is a valid probability distribution,
* the per-column sampling CDFs are monotone and end at 1,
* batch samples always land in the support ``{0, …, n}``,
* ``sample_tiled`` is bit-identical to sequential ``sample_batch`` calls on
  a shared uniform stream, and ``sample_with_uniforms`` (the executor's
  batched-RNG entry point) is bit-identical to ``sample_batch``.

These are the invariants the guide-table kernel, the batched-RNG executor
and the ``.npy`` serving path all assume; hypothesis hunts the corners the
fixed-seed tests miss.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.mechanism import Mechanism, SparseMechanism
from repro.mechanisms.geometric import geometric_mechanism

group_sizes = st.integers(min_value=1, max_value=16)
alphas = st.floats(min_value=0.05, max_value=0.99, allow_nan=False, allow_infinity=False)
seeds = st.integers(min_value=0, max_value=2**32 - 1)

RELAXED = settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])


def representations(n: int, alpha: float):
    """The same GM mechanism in its dense, closed-form and sparse clothes."""
    closed = geometric_mechanism(n, alpha)
    dense = Mechanism(closed.matrix, name="gm-dense", alpha=alpha)
    sparse = SparseMechanism(closed.matrix, name="gm-sparse", alpha=alpha)
    return {"dense": dense, "closed-form": closed, "sparse": sparse}


@RELAXED
@given(n=group_sizes, alpha=alphas)
def test_columns_are_distributions(n, alpha):
    for label, mechanism in representations(n, alpha).items():
        for j in range(n + 1):
            column = mechanism.column(j)
            assert column.shape == (n + 1,), label
            assert np.all(column >= -1e-12), label
            np.testing.assert_allclose(np.sum(column), 1.0, atol=1e-9)


@RELAXED
@given(n=group_sizes, alpha=alphas)
def test_sampling_cdfs_monotone_and_normalised(n, alpha):
    for label, mechanism in representations(n, alpha).items():
        for j in range(n + 1):
            cdf = mechanism._sampling_cdf_row(j)
            assert cdf.shape == (n + 1,), label
            assert np.all(np.diff(cdf) >= -1e-15), f"{label}: CDF not monotone"
            assert np.all(cdf >= -1e-12) and np.all(cdf <= 1.0 + 1e-9), label
            np.testing.assert_allclose(cdf[-1], 1.0, atol=1e-9)


@RELAXED
@given(n=group_sizes, alpha=alphas, seed=seeds)
def test_samples_stay_in_support(n, alpha, seed):
    rng = np.random.default_rng(seed)
    counts = rng.integers(0, n + 1, size=32)
    for label, mechanism in representations(n, alpha).items():
        released = mechanism.sample_batch(counts, rng=np.random.default_rng(seed))
        assert released.shape == counts.shape, label
        assert released.min() >= 0 and released.max() <= n, label


@RELAXED
@given(n=group_sizes, alpha=alphas, seed=seeds, repetitions=st.integers(1, 4))
def test_tiled_equals_sequential_batches_on_shared_stream(n, alpha, seed, repetitions):
    base = np.random.default_rng(seed)
    counts = base.integers(0, n + 1, size=17)
    for label, mechanism in representations(n, alpha).items():
        tiled = mechanism.sample_tiled(
            counts, repetitions, rng=np.random.default_rng(seed + 1)
        )
        sequential_rng = np.random.default_rng(seed + 1)
        sequential = np.vstack(
            [mechanism.sample_batch(counts, rng=sequential_rng) for _ in range(repetitions)]
        )
        assert np.array_equal(tiled, sequential), (
            f"{label}: tiled release deviates from sequential batches"
        )


@RELAXED
@given(n=group_sizes, alpha=alphas, seed=seeds)
def test_sample_with_uniforms_equals_sample_batch(n, alpha, seed):
    base = np.random.default_rng(seed)
    counts = base.integers(0, n + 1, size=23)
    for label, mechanism in representations(n, alpha).items():
        batch = mechanism.sample_batch(counts, rng=np.random.default_rng(seed + 2))
        uniforms = np.random.default_rng(seed + 2).random(counts.shape[0])
        explicit = mechanism.sample_with_uniforms(counts, uniforms)
        assert np.array_equal(batch, explicit), (
            f"{label}: sample_with_uniforms deviates from sample_batch"
        )


@RELAXED
@given(n=group_sizes, alpha=alphas, seed=seeds)
def test_representations_agree_on_a_shared_stream(n, alpha, seed):
    """All three representations release identical counts from one stream."""
    base = np.random.default_rng(seed)
    counts = base.integers(0, n + 1, size=29)
    releases = {
        label: mechanism.sample_batch(counts, rng=np.random.default_rng(seed + 3))
        for label, mechanism in representations(n, alpha).items()
    }
    reference = releases["dense"]
    for label, released in releases.items():
        assert np.array_equal(released, reference), (
            f"{label} deviates from dense on a shared uniform stream"
        )
