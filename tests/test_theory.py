"""Tests for the closed forms and analytic results (repro.core.theory)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import theory
from repro.core.losses import l0_score
from repro.core.properties import is_column_monotone, is_weakly_honest
from repro.mechanisms.fair import explicit_fair_mechanism
from repro.mechanisms.geometric import geometric_mechanism
from repro.mechanisms.uniform import uniform_mechanism
from repro.mechanisms.weakly_honest import weakly_honest_mechanism


class TestConversions:
    def test_alpha_epsilon_round_trip(self):
        for epsilon in (0.0, 0.1, 0.5, 1.0, 3.0):
            assert theory.epsilon_from_alpha(theory.alpha_from_epsilon(epsilon)) == pytest.approx(
                epsilon
            )

    def test_epsilon_of_zero_alpha_is_infinite(self):
        assert theory.epsilon_from_alpha(0.0) == float("inf")

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            theory.alpha_from_epsilon(-1.0)
        with pytest.raises(ValueError):
            theory.epsilon_from_alpha(1.5)
        with pytest.raises(ValueError):
            theory.gm_l0_score(-0.1)
        with pytest.raises(ValueError):
            theory.em_diagonal(0, 0.5)


class TestClosedFormScores:
    @pytest.mark.parametrize("alpha", [0.1, 0.5, 0.62, 0.9, 0.99])
    def test_gm_l0_closed_form_matches_matrix(self, alpha):
        for n in (2, 5, 9):
            assert l0_score(geometric_mechanism(n, alpha)) == pytest.approx(
                theory.gm_l0_score(alpha)
            )

    @pytest.mark.parametrize("n", [2, 3, 4, 7, 8, 11, 12])
    @pytest.mark.parametrize("alpha", [0.3, 0.62, 0.9, 0.99])
    def test_em_l0_closed_form_matches_matrix(self, n, alpha):
        assert l0_score(explicit_fair_mechanism(n, alpha)) == pytest.approx(
            theory.em_l0_score(n, alpha)
        )

    def test_em_diagonal_even_n_matches_equation_15(self):
        # Eq. 15: y = (1 - alpha) / (1 + alpha - 2 alpha^{n/2 + 1}) for even n.
        for n in (2, 4, 6, 10):
            for alpha in (0.3, 0.62, 0.9):
                formula = (1 - alpha) / (1 + alpha - 2 * alpha ** (n / 2 + 1))
                assert theory.em_diagonal(n, alpha) == pytest.approx(formula)

    def test_em_diagonal_at_alpha_one_is_uniform(self):
        assert theory.em_diagonal(5, 1.0) == pytest.approx(1.0 / 6.0)

    def test_gm_structure_values(self):
        assert theory.gm_corner_value(0.5) == pytest.approx(2.0 / 3.0)
        assert theory.gm_diagonal_interior(0.5) == pytest.approx(1.0 / 3.0)

    def test_um_scores(self):
        assert theory.um_l0_score(7) == 1.0
        assert theory.um_raw_objective(7) == pytest.approx(7.0 / 8.0)
        assert l0_score(uniform_mechanism(7)) == pytest.approx(theory.um_l0_score(7))

    def test_fairness_bound_is_attained_by_em(self):
        for n, alpha in [(4, 0.9), (7, 0.62)]:
            em = explicit_fair_mechanism(n, alpha)
            assert em.matrix[0, 0] == pytest.approx(theory.fairness_diagonal_bound(n, alpha))

    def test_em_to_gm_cost_ratio_about_one_plus_one_over_n(self):
        for n in (4, 8, 16, 64):
            ratio = theory.em_to_gm_cost_ratio(n, 0.9)
            assert 1.0 < ratio <= (n + 1) / n + 1e-9


class TestLemmaThresholds:
    def test_lemma2_weak_honesty_threshold(self):
        # alpha = 0.76 -> threshold = 2*0.76/0.24 = 6.33...
        assert theory.weak_honesty_threshold(0.76) == pytest.approx(2 * 0.76 / 0.24)
        assert theory.weak_honesty_threshold(1.0) == float("inf")

    @pytest.mark.parametrize("alpha", [0.5, 0.67, 0.76, 0.9])
    def test_lemma2_matches_matrix_check(self, alpha):
        threshold = theory.weak_honesty_threshold(alpha)
        for n in range(2, 24):
            predicted = theory.gm_is_weakly_honest(n, alpha)
            actual = is_weakly_honest(geometric_mechanism(n, alpha))
            assert predicted == actual, (n, alpha, threshold)

    @pytest.mark.parametrize("alpha", [0.2, 0.4, 0.5, 0.51, 0.7, 0.9])
    def test_lemma3_matches_matrix_check(self, alpha):
        predicted = theory.gm_is_column_monotone(alpha)
        actual = is_column_monotone(geometric_mechanism(6, alpha))
        assert predicted == actual

    def test_wm_l0_bounds_are_ordered(self):
        lower, upper = theory.wm_l0_bounds(6, 0.9)
        assert lower <= upper
        wm = weakly_honest_mechanism(6, 0.9)
        assert lower - 1e-9 <= l0_score(wm) <= upper + 1e-9


class TestGupteSundararajanTest:
    def test_gm_is_derivable_from_itself(self):
        for n, alpha in [(3, 0.5), (5, 0.8)]:
            assert theory.gupte_sundararajan_derivable(geometric_mechanism(n, alpha), alpha)

    @pytest.mark.parametrize("n,alpha", [(2, 0.5), (4, 0.9), (7, 0.62)])
    def test_em_not_derivable_from_gm(self, n, alpha):
        assert not theory.gupte_sundararajan_derivable(explicit_fair_mechanism(n, alpha), alpha)
        assert theory.em_violates_derivability(n, alpha)

    def test_wm_not_derivable_from_gm_when_distinct(self):
        # At alpha = 0.9 and small n, WM differs from GM and the condition fails.
        wm = weakly_honest_mechanism(4, 0.9)
        assert not theory.gupte_sundararajan_derivable(wm, 0.9)

    def test_rr_case_n1_is_not_flagged(self):
        assert not theory.em_violates_derivability(1, 0.9)


class TestSymmetrisation:
    def test_symmetrize_produces_centrosymmetric_matrix(self, rng):
        raw = rng.random((6, 6)) + 0.01
        matrix = raw / raw.sum(axis=0, keepdims=True)
        symmetric = theory.symmetrize(matrix)
        assert np.allclose(symmetric, symmetric[::-1, ::-1])

    def test_symmetrize_preserves_trace_and_column_sums(self, rng):
        raw = rng.random((5, 5)) + 0.01
        matrix = raw / raw.sum(axis=0, keepdims=True)
        symmetric = theory.symmetrize(matrix)
        assert np.trace(symmetric) == pytest.approx(np.trace(matrix))
        assert np.allclose(symmetric.sum(axis=0), 1.0)

    def test_symmetrize_preserves_dp(self):
        gm = geometric_mechanism(5, 0.7)
        symmetric = theory.symmetrize(gm)
        from repro.core.properties import satisfies_differential_privacy

        assert satisfies_differential_privacy(symmetric, 0.7)

    def test_symmetrize_idempotent_on_symmetric_input(self):
        em = explicit_fair_mechanism(5, 0.8)
        assert np.allclose(theory.symmetrize(em), em.matrix)


class TestRandomizedResponseFormulas:
    def test_alpha_and_truth_probability_are_inverse(self):
        for alpha in (0.1, 0.5, 0.9):
            p = theory.randomized_response_truth_probability(alpha)
            assert theory.randomized_response_alpha(p) == pytest.approx(alpha)

    def test_truth_probability_bounds(self):
        with pytest.raises(ValueError):
            theory.randomized_response_alpha(0.3)

    def test_nary_truth_probability(self):
        # n = 1 reduces to the binary formula.
        assert theory.nary_randomized_response_truth_probability(1, 0.8) == pytest.approx(
            theory.randomized_response_truth_probability(0.8)
        )
        # Larger domains force smaller truth probability.
        assert theory.nary_randomized_response_truth_probability(
            10, 0.8
        ) < theory.nary_randomized_response_truth_probability(2, 0.8)
