"""Tests for the explicit fair mechanism EM (repro.mechanisms.fair)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.losses import l0_score
from repro.core.properties import check_all_properties, satisfies_differential_privacy
from repro.core.theory import em_diagonal, em_l0_score, fairness_diagonal_bound
from repro.mechanisms.fair import explicit_fair_mechanism, fair_exponent_matrix, fair_matrix


class TestFigure4ExponentPattern:
    """The n = 7 exponent pattern must match Figure 4 of the paper exactly."""

    #: Figure 4, transcribed: entry (i, j) is the power of alpha multiplying y.
    FIGURE_4 = np.array(
        [
            [0, 1, 2, 3, 4, 4, 4, 4],
            [1, 0, 1, 2, 3, 3, 3, 3],
            [1, 1, 0, 1, 2, 3, 3, 3],
            [2, 2, 1, 0, 1, 2, 2, 2],
            [2, 2, 2, 1, 0, 1, 2, 2],
            [3, 3, 3, 2, 1, 0, 1, 1],
            [3, 3, 3, 3, 2, 1, 0, 1],
            [4, 4, 4, 4, 3, 2, 1, 0],
        ]
    )

    def test_exponents_match_figure_4(self):
        assert np.array_equal(fair_exponent_matrix(7), self.FIGURE_4)

    def test_matrix_is_y_times_alpha_to_exponent(self):
        alpha = 0.62
        matrix = fair_matrix(7, alpha)
        y = em_diagonal(7, alpha)
        assert np.allclose(matrix, y * alpha**self.FIGURE_4.astype(float))

    def test_every_column_contains_the_same_multiset_of_exponents(self):
        for n in (4, 5, 7, 8, 11):
            exponents = fair_exponent_matrix(n)
            reference = np.sort(exponents[:, 0])
            for j in range(n + 1):
                assert np.array_equal(np.sort(exponents[:, j]), reference), (n, j)

    def test_row_adjacent_exponents_differ_by_at_most_one(self):
        # This is exactly what makes the construction differentially private.
        for n in (3, 6, 7, 10, 13):
            exponents = fair_exponent_matrix(n)
            assert np.max(np.abs(np.diff(exponents, axis=1))) <= 1, n

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            fair_exponent_matrix(0)
        with pytest.raises(ValueError):
            fair_matrix(4, -0.1)


class TestProbabilisticStructure:
    @pytest.mark.parametrize("n", [2, 3, 4, 7, 8, 12, 15])
    @pytest.mark.parametrize("alpha", [0.3, 0.62, 0.9, 0.99])
    def test_columns_sum_to_one(self, n, alpha):
        matrix = fair_matrix(n, alpha)
        assert np.allclose(matrix.sum(axis=0), 1.0)

    @pytest.mark.parametrize("n", [2, 3, 4, 7, 8, 12, 15])
    @pytest.mark.parametrize("alpha", [0.3, 0.62, 0.9, 0.99])
    def test_differential_privacy(self, n, alpha):
        assert satisfies_differential_privacy(fair_matrix(n, alpha), alpha)

    @pytest.mark.parametrize("n,alpha", [(4, 0.9), (7, 0.62), (8, 0.91), (12, 0.99)])
    def test_theorem4_all_properties_hold(self, n, alpha):
        em = explicit_fair_mechanism(n, alpha)
        assert all(check_all_properties(em).values())

    def test_diagonal_attains_lemma4_bound(self):
        for n, alpha in [(4, 0.9), (6, 0.62), (9, 0.8)]:
            em = explicit_fair_mechanism(n, alpha)
            assert np.allclose(em.diagonal, fairness_diagonal_bound(n, alpha))

    def test_l0_closed_form(self):
        for n, alpha in [(2, 0.5), (7, 0.62), (10, 0.95)]:
            assert l0_score(explicit_fair_mechanism(n, alpha)) == pytest.approx(
                em_l0_score(n, alpha)
            )

    def test_limit_alpha_zero_is_identity(self):
        assert np.allclose(fair_matrix(5, 0.0), np.eye(6))

    def test_limit_alpha_one_is_uniform(self):
        assert np.allclose(fair_matrix(5, 1.0), 1.0 / 6.0)

    def test_em_differs_from_gm_for_n_above_one(self):
        from repro.mechanisms.geometric import geometric_matrix

        assert not np.allclose(fair_matrix(4, 0.8), geometric_matrix(4, 0.8))

    def test_corner_diagonal_lower_than_gm_interior_behaviour(self):
        # Comparing to GM: EM slightly raises the interior diagonal entries and
        # lowers the two corner ones (Section IV-C commentary).
        from repro.mechanisms.geometric import geometric_matrix

        n, alpha = 7, 0.62
        em = fair_matrix(n, alpha)
        gm = geometric_matrix(n, alpha)
        assert em[0, 0] < gm[0, 0]
        assert em[3, 3] > gm[3, 3]
