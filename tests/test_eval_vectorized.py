"""Bit-identity proofs for the vectorised empirical evaluation pipeline.

The evaluation rework (one tiled sample per evaluation, matrix metric
kernels, a parallel sweep stage) claims *bit-identical* results to the
original repetition loop on the same seeded generator.  These tests prove
that claim for all three mechanism representations, for the Figure-12
multi-threshold path, and for the parallel sweep against the serial one.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

import repro
from repro.core.mechanism import ClosedFormMechanism, DenseMechanism, Mechanism
from repro.eval import metrics as metrics_module
from repro.eval.empirical import _evaluate_loop, evaluate_mechanism
from repro.eval.metrics import (
    ExceedsDistanceRate,
    distance_metric,
    distance_metrics,
    error_rate,
    exceeds_rate_from_diff,
    exceeds_rate_profile,
    mean_signed_error,
    signed_differences,
)
from repro.eval.sweep import sweep
from repro.histogram.queries import (
    evaluate_range_queries,
    evaluate_range_queries_matrix,
    random_range_queries,
)
from repro.histogram.release import HistogramRelease, PrivateHistogram
from repro.mechanisms.fair import explicit_fair_mechanism
from repro.mechanisms.geometric import geometric_matrix, geometric_mechanism


def _representations(n: int, alpha: float):
    """One mechanism of each representation at (n, alpha)."""
    closed = geometric_mechanism(n, alpha)
    dense = DenseMechanism(geometric_matrix(n, alpha), name="GM-dense", alpha=alpha)
    sparse = repro.design_mechanism(n, alpha, representation="sparse")
    assert {m.representation for m in (closed, dense, sparse)} == {
        "closed-form",
        "dense",
        "sparse",
    }
    return closed, dense, sparse


class TestSampleTiled:
    @pytest.mark.parametrize("repetitions", [1, 2, 7])
    def test_tiled_equals_sequential_for_every_representation(self, rng, repetitions):
        for mechanism in _representations(6, 0.9):
            counts = rng.integers(0, 7, size=211)
            sequential_rng = np.random.default_rng(13)
            sequential = np.stack(
                [mechanism.sample_batch(counts, rng=sequential_rng) for _ in range(repetitions)]
            )
            tiled = mechanism.sample_tiled(counts, repetitions, rng=np.random.default_rng(13))
            assert tiled.shape == (repetitions, counts.shape[0])
            assert np.array_equal(tiled, sequential), mechanism.representation

    def test_tiled_equals_sequential_above_the_exact_sampling_limit(self, rng, monkeypatch):
        # Force the closed form onto its analytic bisection sampler.
        monkeypatch.setattr(ClosedFormMechanism, "EXACT_SAMPLING_LIMIT", 4)
        mechanism = geometric_mechanism(64, 0.8)
        counts = rng.integers(0, 65, size=97)
        sequential_rng = np.random.default_rng(3)
        sequential = np.stack(
            [mechanism.sample_batch(counts, rng=sequential_rng) for _ in range(5)]
        )
        tiled = mechanism.sample_tiled(counts, 5, rng=np.random.default_rng(3))
        assert np.array_equal(tiled, sequential)

    def test_guide_fast_path_is_bit_identical(self, rng, monkeypatch):
        # Shrink the guide resolution (still a power of two) so the fast
        # path engages at test sizes, with ~10% of bins ambiguous — both
        # the O(1) hits and the exact fallback are exercised.
        monkeypatch.setattr(Mechanism, "GUIDE_BINS", 64)
        for mechanism in _representations(6, 0.9):
            counts = rng.integers(0, 7, size=500)
            assert mechanism._use_guide(12 * counts.shape[0])
            sequential_rng = np.random.default_rng(31)
            sequential = np.stack(
                [mechanism.sample_batch(counts, rng=sequential_rng) for _ in range(12)]
            )
            tiled = mechanism.sample_tiled(counts, 12, rng=np.random.default_rng(31))
            assert np.array_equal(tiled, sequential), mechanism.representation

    def test_guide_not_used_in_the_bisection_regime(self, monkeypatch):
        monkeypatch.setattr(ClosedFormMechanism, "EXACT_SAMPLING_LIMIT", 4)
        mechanism = geometric_mechanism(64, 0.8)
        assert not mechanism._use_guide(10**6)

    def test_validation(self, rng):
        mechanism = geometric_mechanism(4, 0.9)
        with pytest.raises(ValueError):
            mechanism.sample_tiled([1, 2], 0, rng=rng)
        with pytest.raises(ValueError):
            mechanism.sample_tiled([5], 3, rng=rng)
        with pytest.raises(ValueError):
            mechanism.sample_tiled([[1, 2]], 3, rng=rng)
        assert mechanism.sample_tiled([], 3, rng=rng).shape == (3, 0)


class TestVectorizedEvaluateMechanism:
    @pytest.mark.parametrize("repetitions", [1, 6])
    def test_equals_loop_for_every_representation(self, rng, repetitions):
        counts = rng.integers(0, 7, size=300)
        for mechanism in _representations(6, 0.9):
            vectorized = evaluate_mechanism(
                mechanism, counts, group_size=6, repetitions=repetitions, seed=21
            )
            loop = _evaluate_loop(
                mechanism, counts, group_size=6, repetitions=repetitions, seed=21
            )
            assert vectorized.metrics() == loop.metrics()
            for name in vectorized.metrics():
                assert np.array_equal(
                    vectorized.per_repetition[name], loop.per_repetition[name]
                ), (mechanism.representation, name)

    def test_equals_loop_on_custom_and_kernelless_metrics(self, rng):
        counts = rng.integers(0, 5, size=120)
        mechanism = explicit_fair_mechanism(4, 0.9)

        def plain_python_metric(true, released):
            return float(np.max(np.asarray(released) - np.asarray(true)))

        metrics = {
            "bias": mean_signed_error,
            "worst_overshoot": plain_python_metric,
            "exceeds_2_rate": distance_metric(2),
        }
        vectorized = evaluate_mechanism(
            mechanism, counts, group_size=4, repetitions=5, metrics=metrics, seed=2
        )
        loop = _evaluate_loop(
            mechanism, counts, group_size=4, repetitions=5, metrics=metrics, seed=2
        )
        for name in metrics:
            assert np.array_equal(vectorized.per_repetition[name], loop.per_repetition[name])

    def test_distance_family_single_pass_equals_loop(self, rng):
        counts = rng.integers(0, 9, size=250)
        mechanism = geometric_mechanism(8, 0.67)
        family = distance_metrics(range(8))
        vectorized = evaluate_mechanism(
            mechanism, counts, group_size=8, repetitions=4, metrics=family, seed=7
        )
        loop = _evaluate_loop(
            mechanism, counts, group_size=8, repetitions=4, metrics=family, seed=7
        )
        for name in family:
            assert np.array_equal(vectorized.per_repetition[name], loop.per_repetition[name])

    def test_no_dense_matrix_is_materialised(self, rng):
        mechanism = geometric_mechanism(32, 0.9)
        counts = rng.integers(0, 33, size=400)
        before = Mechanism.densifications
        evaluate_mechanism(mechanism, counts, group_size=32, repetitions=10, seed=1)
        assert Mechanism.densifications == before


class TestMetricKernels:
    def test_exceeds_rate_profile_matches_per_threshold_kernels(self, rng):
        diff = rng.integers(-6, 7, size=(5, 90)).astype(float)
        distances = [0, 1, 2, 3, 4, 5, 6, 9]
        profile = exceeds_rate_profile(diff, distances)
        assert profile.shape == (len(distances), 5)
        for k, d in enumerate(distances):
            assert np.array_equal(profile[k], exceeds_rate_from_diff(diff, d))

    def test_profile_validates_inputs(self):
        with pytest.raises(ValueError):
            exceeds_rate_profile(np.zeros((2, 3)), [-1])
        with pytest.raises(ValueError):
            exceeds_rate_profile(np.zeros((2, 3)), [[0, 1]])

    def test_signed_differences_broadcasts_repetitions(self):
        true = np.array([1, 2, 3])
        released = np.array([[1, 2, 4], [0, 2, 3]])
        diff = signed_differences(true, released)
        assert np.array_equal(diff, [[0.0, 0.0, 1.0], [-1.0, 0.0, 0.0]])
        with pytest.raises(ValueError):
            signed_differences(true, np.zeros((2, 4)))
        with pytest.raises(ValueError):
            signed_differences([], [])

    def test_scalar_metrics_carry_kernels(self):
        for metric in (
            metrics_module.error_rate,
            metrics_module.mean_absolute_error,
            metrics_module.root_mean_square_error,
            metrics_module.mean_signed_error,
            distance_metric(3),
        ):
            assert callable(metric.diff_kernel)

    def test_distance_metric_is_picklable(self):
        metric = distance_metric(2)
        clone = pickle.loads(pickle.dumps(metric))
        assert clone.d == 2
        assert clone.__name__ == "exceeds_2_rate"
        assert clone([0, 1, 2], [3, 1, 2]) == pytest.approx(1 / 3)

    def test_exceeds_distance_rate_rejects_negative_d(self):
        with pytest.raises(ValueError):
            ExceedsDistanceRate(-1)


class TestParallelEvaluationStage:
    def test_parallel_sweep_equals_serial_row_for_row(self):
        """max_workers now fans out evaluation too; rows must be identical."""
        kwargs = dict(
            alphas=[0.67, 0.91],
            group_sizes=[3, 5],
            probabilities=[0.3, 0.5],
            mechanisms=("GM", "WM", "EM", "UM"),
            repetitions=3,
            num_groups=60,
            seed=17,
        )
        serial = sweep(**kwargs)
        parallel = sweep(max_workers=3, **kwargs)
        assert serial.rows == parallel.rows

    def test_unpicklable_metrics_fall_back_to_serial(self):
        """A lambda metric must not crash a max_workers sweep."""
        kwargs = dict(
            alphas=[0.8],
            group_sizes=[4],
            probabilities=[0.5],
            mechanisms=("GM", "UM"),
            repetitions=2,
            num_groups=30,
            metrics={"zero": lambda true, released: 0.0},
            seed=9,
        )
        serial = sweep(**kwargs)
        parallel = sweep(max_workers=2, **kwargs)
        assert serial.rows == parallel.rows

    def test_unpicklable_mechanism_falls_back_to_serial(self):
        """A mechanism carrying unpicklable metadata must not crash either."""
        mechanism = geometric_mechanism(4, 0.8)
        mechanism.metadata["note"] = lambda: None
        kwargs = dict(
            alphas=[0.8],
            group_sizes=[4],
            probabilities=[0.5],
            mechanisms=(mechanism, "UM"),
            repetitions=2,
            num_groups=30,
            seed=9,
        )
        serial = sweep(**kwargs)
        parallel = sweep(max_workers=2, **kwargs)
        assert serial.rows == parallel.rows

    def test_parallel_sweep_with_custom_metrics(self):
        kwargs = dict(
            alphas=[0.8],
            group_sizes=[4],
            probabilities=[0.5],
            mechanisms=("GM", "EM"),
            repetitions=2,
            num_groups=40,
            metrics={"error_rate": error_rate, "exceeds_1_rate": distance_metric(1)},
            seed=5,
        )
        serial = sweep(**kwargs)
        parallel = sweep(max_workers=2, **kwargs)
        assert serial.rows == parallel.rows


class TestHistogramVectorization:
    def test_release_many_equals_sequential_releases(self, rng):
        true_counts = rng.integers(0, 12, size=16)
        release = HistogramRelease(geometric_mechanism, 0.9)
        seq_rng = np.random.default_rng(9)
        sequential = np.stack(
            [release.release(true_counts, capacity=12, rng=seq_rng).released_counts for _ in range(4)]
        )
        tiled = HistogramRelease(geometric_mechanism, 0.9).release_many(
            true_counts, 4, capacity=12, rng=np.random.default_rng(9)
        )
        assert np.array_equal(tiled, sequential)

    def test_matrix_query_summary_matches_scalar_path(self, rng):
        true_counts = rng.integers(0, 20, size=12)
        queries = random_range_queries(12, 24, rng=rng)
        release = HistogramRelease(geometric_mechanism, 0.8)
        released = release.release_many(true_counts, 5, rng=np.random.default_rng(2))
        summary = evaluate_range_queries_matrix(true_counts, released, queries)
        for r in range(5):
            histogram = PrivateHistogram(
                true_counts=true_counts,
                released_counts=released[r],
                alpha=0.8,
                mechanism_name="GM",
            )
            scalar = evaluate_range_queries(histogram, queries)
            for name, values in summary.items():
                assert scalar[name] == values[r], name

    def test_matrix_query_summary_validation(self, rng):
        queries = random_range_queries(4, 3, rng=rng)
        with pytest.raises(ValueError):
            evaluate_range_queries_matrix([1, 2, 3, 4], np.zeros((2, 3)), queries)
        with pytest.raises(ValueError):
            evaluate_range_queries_matrix([1, 2], np.zeros((2, 2)), queries)
        with pytest.raises(ValueError):
            evaluate_range_queries_matrix([1, 2, 3, 4], np.zeros((2, 4)), [])
