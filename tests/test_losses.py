"""Unit tests for the loss functions (repro.core.losses)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.losses import (
    Objective,
    compare_mechanisms,
    distance_matrix,
    l0_score,
    l0d_score,
    l1_score,
    l2_score,
    mechanism_mae,
    mechanism_rmse,
    objective_value,
    penalty_matrix,
    per_input_loss,
    tail_distribution,
    truth_probability,
    worst_case_loss,
)
from repro.core.mechanism import Mechanism
from repro.core.theory import em_l0_score, gm_l0_score
from repro.mechanisms.fair import explicit_fair_mechanism
from repro.mechanisms.geometric import geometric_mechanism
from repro.mechanisms.uniform import uniform_mechanism


class TestPenaltyMatrices:
    def test_distance_matrix(self):
        distances = distance_matrix(3)
        assert distances[0, 2] == 2 and distances[2, 0] == 2
        assert np.all(np.diag(distances) == 0)

    def test_penalty_p0_indicator(self):
        penalties = penalty_matrix(4, p=0, d=1)
        assert penalties[0, 0] == 0  # on the diagonal
        assert penalties[1, 0] == 0  # within distance 1
        assert penalties[2, 0] == 1  # beyond distance 1

    def test_penalty_p2_squares(self):
        penalties = penalty_matrix(3, p=2)
        assert penalties[0, 2] == 4

    def test_penalty_rejects_d_with_positive_p(self):
        with pytest.raises(ValueError):
            penalty_matrix(3, p=1, d=1)


class TestObjectiveDataclass:
    def test_named_constructors(self):
        assert Objective.l0().describe() == "L0 (sum)"
        assert Objective.l0d(2).describe() == "L0,2 (sum)"
        assert Objective.l1().p == 1
        assert Objective.l2().p == 2
        assert Objective.minimax().aggregator == "max"

    def test_validation(self):
        with pytest.raises(ValueError):
            Objective(p=-1)
        with pytest.raises(ValueError):
            Objective(p=0, d=-1)
        with pytest.raises(ValueError):
            Objective(aggregator="median")
        with pytest.raises(ValueError):
            Objective(p=1, d=2)

    def test_prior_defaults_to_uniform(self):
        assert np.allclose(Objective.l0().prior(5), 0.2)

    def test_custom_weights_are_normalised(self):
        objective = Objective.l0(weights=[2.0, 0.0, 0.0])
        assert np.allclose(objective.prior(3), [1.0, 0.0, 0.0])


class TestObjectiveValues:
    def test_identity_mechanism_has_zero_loss(self):
        identity = Mechanism(np.eye(4))
        assert objective_value(identity, Objective.l0()) == 0.0
        assert l1_score(identity) == 0.0
        assert l2_score(identity) == 0.0
        assert l0_score(identity) == 0.0

    def test_uniform_mechanism_raw_and_rescaled_l0(self):
        um = uniform_mechanism(5)
        # Raw O_{0,sum} is n/(n+1); the rescaled L0 is exactly 1 (Eq. 1).
        assert objective_value(um, Objective.l0()) == pytest.approx(5.0 / 6.0)
        assert l0_score(um) == pytest.approx(1.0)

    def test_l0_matches_trace_formula(self, gm_small):
        n = gm_small.n
        expected = (n + 1) / n - gm_small.trace / n
        assert l0_score(gm_small) == pytest.approx(expected)

    def test_l0_closed_forms(self):
        for n, alpha in [(4, 0.9), (7, 0.62), (10, 0.5)]:
            assert l0_score(geometric_mechanism(n, alpha)) == pytest.approx(gm_l0_score(alpha))
            assert l0_score(explicit_fair_mechanism(n, alpha)) == pytest.approx(
                em_l0_score(n, alpha)
            )

    def test_l0d_equals_l0_at_zero(self, em_small):
        assert l0d_score(em_small, 0) == pytest.approx(l0_score(em_small))

    def test_l0d_decreases_with_d(self, gm_small):
        values = [l0d_score(gm_small, d) for d in range(gm_small.n + 1)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))
        assert values[-1] == pytest.approx(0.0)  # nothing is more than n away

    def test_objective_rejects_double_specification(self, gm_small):
        with pytest.raises(ValueError):
            objective_value(gm_small, Objective.l0(), p=1)

    def test_weighted_objective_uses_prior(self):
        um = uniform_mechanism(3)
        # Prior entirely on input 0: wrong-answer probability is 3/4.
        weights = [1.0, 0.0, 0.0, 0.0]
        assert objective_value(um, Objective.l0(weights=weights)) == pytest.approx(0.75)

    def test_minimax_aggregator_takes_worst_input(self):
        gm = geometric_mechanism(5, 0.7)
        per_input = per_input_loss(gm, Objective.l1())
        assert worst_case_loss(gm, p=1) == pytest.approx(per_input.max())
        assert worst_case_loss(gm, p=1) >= l1_score(gm)


class TestDerivedScores:
    def test_rmse_is_sqrt_of_l2(self, gm_small):
        assert mechanism_rmse(gm_small) == pytest.approx(np.sqrt(l2_score(gm_small)))

    def test_mae_matches_l1(self, em_small):
        assert mechanism_mae(em_small) == pytest.approx(l1_score(em_small))

    def test_truth_probability_complements_raw_l0(self, em_small):
        raw_l0 = objective_value(em_small, Objective.l0())
        assert truth_probability(em_small) == pytest.approx(1.0 - raw_l0)

    def test_tail_distribution_shape_and_monotonicity(self, gm_small):
        tail = tail_distribution(gm_small)
        assert tail.shape == (gm_small.n + 1,)
        assert np.all(np.diff(tail) <= 1e-12)
        assert tail[0] == pytest.approx(l0_score(gm_small))

    def test_per_input_loss_identity(self):
        identity = Mechanism(np.eye(4))
        assert np.allclose(per_input_loss(identity), 0.0)

    def test_compare_mechanisms_keys(self, gm_small, em_small, um_small):
        comparison = compare_mechanisms([gm_small, em_small, um_small])
        assert set(comparison) == {"GM", "EM", "UM"}
        assert comparison["GM"] < comparison["EM"] < comparison["UM"]


class TestPaperOrderings:
    """Cross-mechanism orderings stated in the paper."""

    @pytest.mark.parametrize("alpha", [0.55, 0.67, 0.76, 0.9, 0.99])
    @pytest.mark.parametrize("n", [2, 4, 7, 12])
    def test_gm_beats_em_beats_um_on_l0(self, n, alpha):
        gm = l0_score(geometric_mechanism(n, alpha))
        em = l0_score(explicit_fair_mechanism(n, alpha))
        um = l0_score(uniform_mechanism(n))
        assert gm <= em + 1e-12
        assert em <= um + 1e-9

    @pytest.mark.parametrize("n", [2, 4, 8, 16, 32])
    def test_em_premium_shrinks_with_n(self, n):
        alpha = 0.9
        ratio = l0_score(explicit_fair_mechanism(n, alpha)) / l0_score(
            geometric_mechanism(n, alpha)
        )
        # The paper: the premium is roughly a factor (n + 1)/n.
        assert 1.0 <= ratio <= (n + 1) / n + 0.05
