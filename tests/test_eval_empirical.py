"""Tests for the empirical evaluation loop (repro.eval.empirical)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.groups import GroupedCounts
from repro.eval.empirical import EmpiricalResult, evaluate_mechanism, evaluate_mechanisms
from repro.eval.metrics import error_rate
from repro.mechanisms.fair import explicit_fair_mechanism
from repro.mechanisms.geometric import geometric_mechanism
from repro.mechanisms.uniform import uniform_mechanism


@pytest.fixture
def workload(rng):
    counts = rng.binomial(4, 0.5, size=400)
    return GroupedCounts(counts=counts, group_size=4, label="binomial")


class TestEvaluateMechanism:
    def test_result_structure(self, workload, rng):
        result = evaluate_mechanism(uniform_mechanism(4), workload, repetitions=5, rng=rng)
        assert isinstance(result, EmpiricalResult)
        assert result.repetitions == 5
        assert result.num_groups == 400
        assert set(result.metrics()) == {"error_rate", "exceeds_1_rate", "mae", "rmse"}
        assert result.per_repetition["error_rate"].shape == (5,)

    def test_mean_std_and_stderr(self, workload, rng):
        result = evaluate_mechanism(uniform_mechanism(4), workload, repetitions=10, rng=rng)
        values = result.per_repetition["error_rate"]
        assert result.mean("error_rate") == pytest.approx(values.mean())
        assert result.std("error_rate") == pytest.approx(values.std(ddof=1))
        assert result.standard_error("error_rate") == pytest.approx(
            values.std(ddof=1) / np.sqrt(10)
        )

    def test_unknown_metric_raises(self, workload, rng):
        result = evaluate_mechanism(uniform_mechanism(4), workload, repetitions=2, rng=rng)
        with pytest.raises(KeyError):
            result.mean("accuracy")

    def test_uniform_mechanism_error_rate_is_data_independent(self, workload):
        # Figure 10's observation: UM errs with probability 1 - 1/(n+1).
        result = evaluate_mechanism(uniform_mechanism(4), workload, repetitions=20, seed=0)
        assert result.mean("error_rate") == pytest.approx(0.8, abs=0.02)

    def test_raw_counts_accepted_with_group_size(self, rng):
        result = evaluate_mechanism(
            geometric_mechanism(3, 0.8), [0, 1, 2, 3, 3], group_size=3, repetitions=3, rng=rng
        )
        assert result.num_groups == 5

    def test_mismatched_group_size_rejected(self, workload, rng):
        with pytest.raises(ValueError):
            evaluate_mechanism(geometric_mechanism(5, 0.8), workload, rng=rng)

    def test_requires_positive_repetitions_and_data(self, rng):
        with pytest.raises(ValueError):
            evaluate_mechanism(uniform_mechanism(3), [1, 2], group_size=3, repetitions=0, rng=rng)
        with pytest.raises(ValueError):
            evaluate_mechanism(uniform_mechanism(3), [], group_size=3, rng=rng)

    def test_seed_and_rng_exclusive(self, workload, rng):
        with pytest.raises(ValueError):
            evaluate_mechanism(uniform_mechanism(4), workload, rng=rng, seed=3)

    def test_custom_metrics_only(self, workload, rng):
        result = evaluate_mechanism(
            uniform_mechanism(4),
            workload,
            repetitions=3,
            metrics={"error_rate": error_rate},
            rng=rng,
        )
        assert result.metrics() == ["error_rate"]

    def test_as_row_flattens(self, workload, rng):
        row = evaluate_mechanism(uniform_mechanism(4), workload, repetitions=3, rng=rng).as_row()
        assert row["mechanism"] == "UM"
        assert "error_rate" in row and "error_rate_std" in row

    def test_reproducible_with_seed(self, workload):
        first = evaluate_mechanism(geometric_mechanism(4, 0.9), workload, repetitions=4, seed=9)
        second = evaluate_mechanism(geometric_mechanism(4, 0.9), workload, repetitions=4, seed=9)
        assert np.array_equal(
            first.per_repetition["error_rate"], second.per_repetition["error_rate"]
        )


class TestEvaluateMechanisms:
    def test_results_keyed_by_name(self, workload):
        results = evaluate_mechanisms(
            [geometric_mechanism(4, 0.9), explicit_fair_mechanism(4, 0.9), uniform_mechanism(4)],
            workload,
            repetitions=10,
            seed=1,
        )
        assert set(results) == {"GM", "EM", "UM"}

    def test_mid_heavy_data_favours_em_over_gm(self, workload):
        # The paper's core empirical finding at alpha = 0.9 on balanced data.
        results = evaluate_mechanisms(
            [geometric_mechanism(4, 0.9), explicit_fair_mechanism(4, 0.9)],
            workload,
            repetitions=30,
            seed=2,
        )
        assert results["EM"].mean("error_rate") < results["GM"].mean("error_rate")

    def test_adding_a_mechanism_does_not_change_existing_numbers(self, workload):
        small = evaluate_mechanisms(
            [geometric_mechanism(4, 0.9)], workload, repetitions=5, seed=5
        )
        large = evaluate_mechanisms(
            [geometric_mechanism(4, 0.9), uniform_mechanism(4)], workload, repetitions=5, seed=5
        )
        assert np.array_equal(
            small["GM"].per_repetition["error_rate"], large["GM"].per_repetition["error_rate"]
        )
