"""Tests for the baseline mechanisms: randomized response, exponential,
Laplace, staircase, and the registry factory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.losses import l0_score, l1_score
from repro.core.properties import check_all_properties, is_fair
from repro.mechanisms.exponential import exponential_mechanism
from repro.mechanisms.fair import explicit_fair_mechanism
from repro.mechanisms.geometric import geometric_matrix, geometric_mechanism
from repro.mechanisms.laplace import laplace_matrix, laplace_mechanism, sample_laplace_mechanism
from repro.mechanisms.randomized_response import (
    binary_randomized_response,
    nary_randomized_response,
)
from repro.mechanisms.registry import (
    PAPER_MECHANISMS,
    available_mechanisms,
    canonical_name,
    create_mechanism,
    paper_mechanisms,
)
from repro.mechanisms.staircase import (
    sample_staircase_mechanism,
    staircase_matrix,
    staircase_mechanism,
    staircase_noise_pmf,
)


class TestBinaryRandomizedResponse:
    def test_from_alpha(self):
        rr = binary_randomized_response(alpha=0.5)
        # p = 1/(1 + 0.5) = 2/3 and the achieved alpha is exactly 0.5.
        assert rr.probability(0, 0) == pytest.approx(2.0 / 3.0)
        assert rr.max_alpha() == pytest.approx(0.5)

    def test_from_truth_probability(self):
        rr = binary_randomized_response(truth_probability=0.75)
        assert rr.alpha == pytest.approx(1.0 / 3.0)

    def test_is_fair_and_symmetric(self):
        rr = binary_randomized_response(alpha=0.8)
        assert all(check_all_properties(rr).values())

    def test_requires_exactly_one_parameter(self):
        with pytest.raises(ValueError):
            binary_randomized_response()
        with pytest.raises(ValueError):
            binary_randomized_response(alpha=0.5, truth_probability=0.7)
        with pytest.raises(ValueError):
            binary_randomized_response(truth_probability=0.3)

    def test_n1_em_equals_randomized_response(self):
        # The paper notes randomized response is the unique optimum for n = 1;
        # the explicit fair construction reduces to it.
        alpha = 0.7
        rr = binary_randomized_response(alpha=alpha)
        em = explicit_fair_mechanism(1, alpha)
        assert np.allclose(rr.matrix, em.matrix)


class TestNaryRandomizedResponse:
    def test_structure(self):
        nrr = nary_randomized_response(4, 0.8)
        assert np.allclose(np.diag(nrr.matrix), nrr.matrix[0, 0])
        off_diagonal = nrr.matrix[1, 0]
        assert np.allclose(
            nrr.matrix - np.diag(np.diag(nrr.matrix)),
            off_diagonal * (1 - np.eye(5)),
        )

    def test_achieves_requested_alpha(self):
        nrr = nary_randomized_response(6, 0.8)
        assert nrr.max_alpha() >= 0.8 - 1e-9

    def test_is_fair(self):
        assert is_fair(nary_randomized_response(5, 0.9))

    def test_low_utility_compared_to_gm(self):
        # The paper dismisses n-ary RR as low-utility for count queries: its
        # L1 error is far larger than GM's at the same privacy level.
        n, alpha = 8, 0.8
        assert l1_score(nary_randomized_response(n, alpha)) > l1_score(
            geometric_mechanism(n, alpha)
        )

    def test_custom_truth_probability_validated(self):
        with pytest.raises(ValueError):
            nary_randomized_response(4, 0.5, truth_probability=0.0)


class TestExponentialMechanism:
    def test_columns_sum_to_one_and_dp_holds(self):
        mechanism = exponential_mechanism(6, 0.8)
        assert np.allclose(mechanism.matrix.sum(axis=0), 1.0)
        # Guaranteed at least alpha-DP (usually strictly better because of the
        # factor 2 in the exponent).
        assert mechanism.max_alpha() >= 0.8 - 1e-9

    def test_weaker_than_em_at_same_alpha(self):
        # The factor 2 in Eq. 2 halves the effective budget, so the exponential
        # mechanism reports the truth less often than EM does.
        n, alpha = 6, 0.8
        exp = exponential_mechanism(n, alpha)
        em = explicit_fair_mechanism(n, alpha)
        assert exp.truth_probability() < em.truth_probability()

    def test_custom_quality_function(self):
        mechanism = exponential_mechanism(4, 0.7, quality=lambda j, r: -((j - r) ** 2))
        assert np.allclose(mechanism.matrix.sum(axis=0), 1.0)
        # Quadratic quality decays faster, concentrating more on the truth.
        default = exponential_mechanism(4, 0.7)
        assert mechanism.truth_probability() > default.truth_probability()

    def test_is_fair_before_truncation_effects(self):
        # The default quality is |i - j| so the diagonal entries are equal for
        # interior inputs; the whole mechanism is fair only when normalisation
        # constants agree, which happens for symmetric columns (middle input).
        mechanism = exponential_mechanism(4, 0.8)
        assert mechanism.matrix[2, 2] == pytest.approx(mechanism.matrix[2, 2])

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            exponential_mechanism(0, 0.5)
        with pytest.raises(ValueError):
            exponential_mechanism(4, 0.0)
        with pytest.raises(ValueError):
            exponential_mechanism(4, 0.5, sensitivity=0.0)


class TestLaplaceMechanism:
    def test_columns_sum_to_one(self):
        assert np.allclose(laplace_matrix(6, 0.8).sum(axis=0), 1.0)

    def test_satisfies_target_dp(self):
        # Rounding and clamping are post-processing, so alpha-DP carries over.
        mechanism = laplace_mechanism(6, 0.8)
        assert mechanism.max_alpha() >= 0.8 - 1e-9

    def test_close_to_geometric_mechanism(self):
        # The geometric mechanism is the discrete analogue: the two matrices
        # should be similar (but not identical) at the same alpha.
        n, alpha = 6, 0.7
        difference = np.abs(laplace_matrix(n, alpha) - geometric_matrix(n, alpha)).max()
        assert 0.0 < difference < 0.1

    def test_sampler_matches_matrix(self, rng):
        n, alpha, true_count = 5, 0.6, 2
        samples = sample_laplace_mechanism(true_count, n, alpha, rng=rng, size=200_000)
        empirical = np.bincount(samples, minlength=n + 1) / samples.size
        assert np.allclose(empirical, laplace_matrix(n, alpha)[:, true_count], atol=5e-3)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            laplace_matrix(4, 1.0)
        with pytest.raises(ValueError):
            sample_laplace_mechanism(9, 4, 0.5)


class TestStaircaseMechanism:
    def test_width_one_equals_gm(self):
        for n, alpha in [(4, 0.5), (6, 0.8)]:
            assert np.allclose(staircase_matrix(n, alpha, width=1), geometric_matrix(n, alpha))

    @pytest.mark.parametrize("width", [1, 2, 3])
    def test_columns_sum_to_one(self, width):
        matrix = staircase_matrix(7, 0.75, width=width)
        assert np.allclose(matrix.sum(axis=0), 1.0)

    @pytest.mark.parametrize("width", [2, 3])
    def test_wider_plateaus_weaken_per_step_privacy(self, width):
        # Adjacent inputs can shift a plateau boundary by one, which changes
        # the ratio by a full factor alpha only at the boundary; inside a
        # plateau the ratio is 1.  The worst-case ratio stays alpha.
        mechanism = staircase_mechanism(7, 0.75, width=width)
        assert mechanism.max_alpha() >= 0.75 - 1e-9

    def test_noise_pmf_normalised(self):
        pmf = staircase_noise_pmf(0.7, width=2, support=50)
        assert pmf.sum() == pytest.approx(1.0)
        assert pmf[50] == pmf.max()  # mode at zero offset

    def test_sampler_matches_matrix(self, rng):
        n, alpha, width, true_count = 5, 0.6, 2, 3
        samples = sample_staircase_mechanism(true_count, n, alpha, width=width, rng=rng, size=200_000)
        empirical = np.bincount(samples, minlength=n + 1) / samples.size
        assert np.allclose(empirical, staircase_matrix(n, alpha, width)[:, true_count], atol=5e-3)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            staircase_matrix(4, 0.5, width=0)
        with pytest.raises(ValueError):
            staircase_matrix(4, 1.0, width=1)


class TestRegistry:
    def test_available_mechanisms_contains_paper_set(self):
        names = available_mechanisms()
        assert set(PAPER_MECHANISMS) <= set(names)

    def test_canonical_name_resolves_aliases(self):
        assert canonical_name("geometric") == "GM"
        assert canonical_name("Fair") == "EM"
        assert canonical_name("randomized-response") == "NRR"
        with pytest.raises(KeyError):
            canonical_name("magic")

    @pytest.mark.parametrize("name", ["GM", "EM", "UM", "NRR", "EXP", "LAPLACE", "STAIRCASE"])
    def test_create_mechanism_by_name(self, name):
        mechanism = create_mechanism(name, n=4, alpha=0.8)
        assert mechanism.n == 4
        assert np.allclose(mechanism.matrix.sum(axis=0), 1.0)

    def test_create_wm_runs_lp(self):
        wm = create_mechanism("WM", n=3, alpha=0.9)
        assert wm.metadata["source"] == "lp"

    def test_paper_mechanisms_order_and_scores(self):
        mechanisms = paper_mechanisms(4, 0.9)
        assert [m.name for m in mechanisms] == ["GM", "WM", "EM", "UM"]
        scores = [l0_score(m) for m in mechanisms]
        # GM <= WM <= EM <= UM on the L0 scale.
        assert scores[0] <= scores[1] + 1e-9 <= scores[2] + 1e-7 <= scores[3] + 1e-7
