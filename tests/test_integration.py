"""End-to-end integration tests exercising the public API as a user would.

Each scenario follows the paper's workflow: pick properties, obtain the
optimal mechanism (explicitly or through the LP), release grouped counts,
and evaluate the outcome — crossing the lp, core, mechanisms, data and eval
packages in a single pipeline.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.data.adult import generate_adult_like
from repro.data.groups import group_counts
from repro.data.synthetic import binomial_group_counts
from repro.eval.empirical import evaluate_mechanisms
from repro.eval.reporting import ascii_heatmap, describe_mechanism, format_table


class TestSurveyReleaseScenario:
    """A data owner releases per-group counts of a sensitive attribute."""

    def test_full_pipeline_with_selector(self):
        rng = np.random.default_rng(42)
        dataset = generate_adult_like(num_records=3000, rng=rng)
        group_size = 8
        workload = group_counts(dataset.income, group_size, label="income", shuffle=True, rng=rng)

        # The analyst wants fairness; the selector must hand back EM without an LP.
        mechanism, decision = repro.choose_mechanism(group_size, alpha=0.9, properties="F")
        assert decision.branch == "EM"
        assert mechanism.name == "EM"

        released = mechanism.apply(workload.counts, rng=rng)
        assert released.shape == workload.counts.shape
        assert released.min() >= 0 and released.max() <= group_size

        # Fairness means the truth is reported with probability exactly y for
        # every group, whatever the data distribution (Lemma 1).
        truth_rate = float(np.mean(released == workload.counts))
        expected = repro.theory.em_diagonal(group_size, 0.9)
        assert truth_rate == pytest.approx(expected, abs=0.03)

    def test_lp_designed_mechanism_in_pipeline(self):
        rng = np.random.default_rng(43)
        counts = binomial_group_counts(500, 6, 0.5, rng=rng)
        mechanism = repro.design_mechanism(6, alpha=0.8, properties="WH+CM+S")
        assert repro.satisfies_property(mechanism, "WH", tolerance=1e-6)
        released = mechanism.apply(counts, rng=rng)
        error_rate = float(np.mean(released != counts))
        # Better than uniform guessing (which errs with probability 6/7).
        assert error_rate < 6.0 / 7.0


class TestMechanismComparisonScenario:
    """The Figure-10-style comparison done directly through the public API."""

    def test_paper_mechanism_ranking_on_balanced_data(self):
        rng = np.random.default_rng(44)
        counts = binomial_group_counts(800, 8, 0.5, rng=rng)
        mechanisms = repro.paper_mechanisms(8, 0.9)
        results = evaluate_mechanisms(mechanisms, counts, group_size=8, repetitions=20, seed=44)
        error = {name: result.mean("error_rate") for name, result in results.items()}
        # Balanced data + strong privacy: EM best, GM worse than UM.
        assert error["EM"] < error["UM"]
        assert error["GM"] > error["EM"]

    def test_reporting_stack_produces_human_readable_output(self):
        mechanisms = repro.paper_mechanisms(4, 0.9)
        rows = [
            {
                "mechanism": mechanism.name,
                "l0": repro.l0_score(mechanism),
                "truth": repro.truth_probability(mechanism),
            }
            for mechanism in mechanisms
        ]
        table = format_table(rows, title="paper mechanisms at n=4, alpha=0.9")
        assert "mechanism" in table and "GM" in table and "EM" in table
        heatmap = ascii_heatmap(mechanisms[0])
        assert heatmap.count("out") == mechanisms[0].size
        description = describe_mechanism(mechanisms[2])
        assert "EM" in description


class TestLocalDifferentialPrivacyScenario:
    """The n = 1 (LDP) special case: randomized response end to end."""

    def test_randomized_response_aggregation(self):
        rng = np.random.default_rng(45)
        true_bits = (rng.random(5000) < 0.3).astype(int)
        mechanism = repro.binary_randomized_response(alpha=0.5)
        released = mechanism.apply(true_bits, rng=rng)

        # Debias the aggregate: E[released] = p*b + (1-p)*(1-b).
        p = mechanism.metadata["truth_probability"]
        estimate = (released.mean() - (1 - p)) / (2 * p - 1)
        assert estimate == pytest.approx(0.3, abs=0.03)

    def test_rr_matches_em_and_lp_optimum_for_n1(self):
        alpha = 0.6
        rr = repro.binary_randomized_response(alpha=alpha)
        em = repro.explicit_fair_mechanism(1, alpha)
        lp = repro.design_mechanism(1, alpha, properties="all")
        assert rr.allclose(em)
        assert np.allclose(lp.matrix, rr.matrix, atol=1e-7)


class TestCrossBackendConsistency:
    """The two LP backends must be interchangeable in the whole pipeline."""

    @pytest.mark.parametrize("properties", ["WH", "WH+CM", "F"])
    def test_backends_produce_equivalent_mechanisms(self, properties):
        scipy_mechanism = repro.design_mechanism(4, 0.85, properties=properties, backend="scipy")
        simplex_mechanism = repro.design_mechanism(
            4, 0.85, properties=properties, backend="simplex"
        )
        assert repro.l0_score(scipy_mechanism) == pytest.approx(
            repro.l0_score(simplex_mechanism), abs=1e-7
        )
        for mechanism in (scipy_mechanism, simplex_mechanism):
            assert repro.satisfies_differential_privacy(mechanism, 0.85, tolerance=1e-6)


class TestSerialisationWorkflow:
    """Mechanisms can be designed once, stored, and reloaded for deployment."""

    def test_design_store_reload_apply(self, tmp_path):
        mechanism = repro.design_mechanism(5, 0.9, properties="all")
        path = tmp_path / "mechanism.json"
        path.write_text(mechanism.to_json())
        reloaded = repro.Mechanism.from_json(path.read_text())
        assert reloaded.allclose(mechanism)
        rng = np.random.default_rng(0)
        released = reloaded.apply([0, 1, 2, 3, 4, 5], rng=rng)
        assert len(released) == 6
