"""Tests for the uniform mechanism UM and the weakly honest mechanism WM."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.losses import l0_score
from repro.core.properties import (
    StructuralProperty,
    check_all_properties,
    is_column_monotone,
    is_weakly_honest,
)
from repro.core.theory import em_l0_score, gm_l0_score, weak_honesty_threshold
from repro.mechanisms.geometric import geometric_mechanism
from repro.mechanisms.uniform import uniform_matrix, uniform_mechanism
from repro.mechanisms.weakly_honest import weakly_honest_mechanism


class TestUniformMechanism:
    def test_matrix_is_constant(self):
        assert np.allclose(uniform_matrix(4), 0.2)

    def test_l0_score_is_exactly_one(self):
        for n in (1, 3, 9, 20):
            assert l0_score(uniform_mechanism(n)) == pytest.approx(1.0)

    def test_satisfies_every_property_and_any_alpha(self):
        um = uniform_mechanism(5)
        assert all(check_all_properties(um).values())
        assert um.max_alpha() == pytest.approx(1.0)

    def test_invalid_group_size(self):
        with pytest.raises(ValueError):
            uniform_mechanism(0)


class TestWeaklyHonestMechanism:
    def test_default_wm_has_wh_rm_cm_s(self):
        wm = weakly_honest_mechanism(5, 0.9)
        report = check_all_properties(wm, tolerance=1e-6)
        assert report[StructuralProperty.WEAK_HONESTY]
        assert report[StructuralProperty.ROW_MONOTONE]
        assert report[StructuralProperty.COLUMN_MONOTONE]
        assert report[StructuralProperty.SYMMETRY]
        assert wm.name == "WM"

    def test_wh_only_variant_need_not_be_column_monotone(self):
        wm = weakly_honest_mechanism(5, 0.9, column_monotone=False, row_monotone=False)
        assert is_weakly_honest(wm, tolerance=1e-6)
        assert wm.name == "WM[WH]"

    @pytest.mark.parametrize("n,alpha", [(4, 0.9), (6, 0.76), (8, 0.91)])
    def test_l0_is_sandwiched_between_gm_and_em(self, n, alpha):
        wm = weakly_honest_mechanism(n, alpha)
        value = l0_score(wm)
        assert gm_l0_score(alpha) - 1e-7 <= value <= em_l0_score(n, alpha) + 1e-7

    def test_wh_only_cost_matches_gm_above_lemma2_threshold(self):
        alpha = 0.76
        threshold = weak_honesty_threshold(alpha)  # ~6.33
        n = 8
        assert n >= threshold
        wm = weakly_honest_mechanism(n, alpha, column_monotone=False)
        assert l0_score(wm) == pytest.approx(gm_l0_score(alpha), abs=1e-6)

    def test_wh_only_cost_above_gm_below_threshold(self):
        alpha = 0.9  # threshold 18
        wm = weakly_honest_mechanism(4, alpha, column_monotone=False)
        assert l0_score(wm) > gm_l0_score(alpha) + 1e-6

    def test_full_wm_cost_tracks_em_at_very_high_alpha(self):
        # Figure 9(c): at alpha = 0.99 the WM cost stays (essentially) equal to
        # EM's.  WM drops the fairness constraint so it can only be cheaper,
        # and the gap is negligible at this privacy level.
        n, alpha = 6, 0.99
        wm = weakly_honest_mechanism(n, alpha)
        em_value = em_l0_score(n, alpha)
        assert l0_score(wm) <= em_value + 1e-9
        assert l0_score(wm) == pytest.approx(em_value, rel=1e-3)

    def test_wm_respects_privacy(self):
        wm = weakly_honest_mechanism(5, 0.8)
        assert wm.max_alpha() >= 0.8 - 1e-6

    def test_wm_differs_from_gm_when_gm_lacks_wh(self):
        n, alpha = 4, 0.9
        wm = weakly_honest_mechanism(n, alpha)
        gm = geometric_mechanism(n, alpha)
        assert not wm.allclose(gm)
        assert not is_weakly_honest(gm)
        assert is_weakly_honest(wm, tolerance=1e-6)

    def test_simplex_backend_agrees_with_scipy(self):
        scipy_wm = weakly_honest_mechanism(4, 0.85, backend="scipy")
        simplex_wm = weakly_honest_mechanism(4, 0.85, backend="simplex")
        assert l0_score(scipy_wm) == pytest.approx(l0_score(simplex_wm), abs=1e-7)
