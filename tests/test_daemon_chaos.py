"""Daemon-level chaos: kill, restart, reconnect — and prove nobody noticed.

The durability claims of ``--state-dir`` are only worth anything under a
real process death.  These tests run the daemon as a subprocess with
``REPRO_FAULTS`` faults armed, let it die mid-workload (exit code 44,
:data:`repro.engine.faults.KILLED_DAEMON_EXIT`), restart it over the same
state dir, reconnect the tenants and assert the two invariants end to end:

* **spend is charged exactly once** — the restarted daemon's recovered
  ``alpha_spent`` plus the resumed requests compose to exactly what an
  uninterrupted run would have spent;
* **outputs are byte-identical** — every released count (including the
  in-doubt request replayed by ``seq``) equals the serial engine reference
  for that tenant's stream position.

The matrix covers closed-form and sparse plans and 1/4/16 tenants (the
dense-plan restart identity runs in-process in
``test_daemon_durability.py`` — dense plans are injected into the plans
LRU, which a subprocess cannot reach).
"""

from __future__ import annotations

import asyncio
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.engine.faults import KILLED_DAEMON_EXIT
from repro.engine import faults
from repro.engine.plan import ReleasePlan
from repro.serving import AsyncDaemonClient, ServingDaemon
from repro.serving.protocol import OK, tenant_seed_sequence

SEED = 20180416
REPO_ROOT = Path(__file__).resolve().parent.parent
PER_TENANT = 3


def run(coroutine):
    return asyncio.run(coroutine)


def _spawn_daemon(socket_path, state_dir, budget, fault_spec="", extra=()):
    """Start ``repro-mechanisms serve`` as a subprocess; wait for the handshake."""
    env = {"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"}
    if fault_spec:
        env["REPRO_FAULTS"] = fault_spec
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--unix-socket", str(socket_path),
            "--state-dir", str(state_dir),
            "--seed", str(SEED),
            "--budget-alpha", str(budget),
            "--batch-window-ms", "0",
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        cwd=str(REPO_ROOT),
        env=env,
    )
    line = process.stdout.readline()
    assert "serving on" in line, (
        f"daemon failed to start: {line!r}\n{process.stderr.read()}"
    )
    return process


def _counts(tenant: str, i: int, n: int):
    """Deterministic per-(tenant, request) input counts."""
    base = sum(tenant.encode())
    return [(base + i) % (n + 1), (base + 3 * i + 1) % (n + 1)]


def _engine_reference(tenant, counts, n, alpha, properties, requests_before=0):
    plan = ReleasePlan.compile(n, alpha, properties=properties)
    root = tenant_seed_sequence(tenant, server_seed=SEED)
    child = root.spawn(requests_before + 1)[requests_before]
    return [
        int(v)
        for v in plan.execute(np.asarray(counts), rng=np.random.default_rng(child))
    ]


class TestKillRestartReconnect:
    """The full crash drill: serve, die at exit 44, restart, converge."""

    # (workload branch, tenant count): closed-form and sparse plans, small
    # and wide tenant fleets.  (properties, n, alpha, budget) per branch.
    MATRIX = {
        ("closed", 1): ("", 40, 0.5, 0.1),
        ("closed", 4): ("", 40, 0.5, 0.1),
        ("sparse", 4): ("WH+CM", 12, 0.9, 0.5),
        ("closed", 16): ("", 40, 0.5, 0.1),
    }

    @pytest.mark.parametrize("branch,tenant_count", sorted(MATRIX))
    def test_spend_once_bits_identical(self, branch, tenant_count, tmp_path):
        properties, n, alpha, budget = self.MATRIX[(branch, tenant_count)]
        tenants = [f"t{i}" for i in range(tenant_count)]
        socket_path = tmp_path / "repro.sock"
        state_dir = tmp_path / "state"
        # Kill mid-run: after this many single-request batches the daemon
        # hard-exits with that batch charged+sampled but unanswered.
        kill_after = max(2, (PER_TENANT * tenant_count) // 2)

        async def drive_until_crash():
            clients = {}
            responses = {t: [] for t in tenants}
            try:
                for t in tenants:
                    client = await AsyncDaemonClient.connect(path=socket_path)
                    await client.hello(t)
                    clients[t] = client
                for i in range(PER_TENANT):
                    for t in tenants:
                        r = await clients[t].release(
                            _counts(t, i, n), n=n, alpha=alpha,
                            properties=properties, seq=i,
                        )
                        assert r["code"] == OK, r
                        responses[t].append(r)
            except (ConnectionError, OSError):
                pass  # the injected kill landed
            finally:
                for client in clients.values():
                    await client.close()
            return responses

        async def drive_recovery(responses):
            recovered = {}
            for t in tenants:
                client = await AsyncDaemonClient.connect(path=socket_path)
                hello = await client.hello(t)
                served = list(responses[t])
                k = len(served)
                next_seq = hello["next_seq"]
                # Recovered spend is exactly the pre-crash charges — the
                # crash itself never double-charges or forgets a charge.
                assert hello["budget"]["alpha_spent"] == pytest.approx(
                    alpha ** next_seq
                )
                assert next_seq in (k, k + 1), (t, k, next_seq)
                if next_seq == k + 1:
                    # The in-doubt request: charged, sampled, unanswered.
                    # Replay it by seq — same bits, no second charge.
                    replay = await client.release(
                        _counts(t, k, n), n=n, alpha=alpha,
                        properties=properties, seq=k,
                    )
                    assert replay["code"] == OK and replay["replayed"] is True
                    served.append(replay)
                for i in range(len(served), PER_TENANT):
                    r = await client.release(
                        _counts(t, i, n), n=n, alpha=alpha,
                        properties=properties, seq=i,
                    )
                    assert r["code"] == OK, r
                    served.append(r)
                stats = await client.stats()
                recovered[t] = (served, stats["tenant"]["budget"]["alpha_spent"])
                await client.close()
            shutdown_client = await AsyncDaemonClient.connect(path=socket_path)
            await shutdown_client.shutdown()
            await shutdown_client.close()
            return recovered

        crashed = _spawn_daemon(
            socket_path, state_dir, budget,
            fault_spec=f"kill_daemon:{kill_after}",
        )
        try:
            responses = run(drive_until_crash())
            assert crashed.wait(timeout=30) == KILLED_DAEMON_EXIT
        finally:
            if crashed.poll() is None:  # pragma: no cover - cleanup on failure
                crashed.kill()
                crashed.wait()
        # Some tenant must actually have lived through the crash window.
        assert sum(len(r) for r in responses.values()) < PER_TENANT * tenant_count

        socket_path.unlink(missing_ok=True)
        restarted = _spawn_daemon(socket_path, state_dir, budget)
        try:
            recovered = run(drive_recovery(responses))
            assert restarted.wait(timeout=30) == 0
        finally:
            if restarted.poll() is None:  # pragma: no cover - cleanup on failure
                restarted.kill()
                restarted.wait()

        for t in tenants:
            served, spent = recovered[t]
            assert len(served) == PER_TENANT
            # Exactly-once spend: the full run composes to alpha^PER_TENANT.
            assert spent == pytest.approx(alpha ** PER_TENANT)
            # Byte-identity: every response — served before the crash,
            # replayed across it, or resumed after it — matches the serial
            # engine reference at its stream position.
            for i, response in enumerate(served):
                assert response["released"] == _engine_reference(
                    t, _counts(t, i, n), n, alpha, properties,
                    requests_before=i,
                ), (t, i)


class TestTornTenantLedgerCrash:
    def test_torn_append_kills_daemon_and_restart_truncates(self, tmp_path):
        """A crash mid-ledger-append: torn tail on disk, exit 44, clean resume."""
        socket_path = tmp_path / "repro.sock"
        state_dir = tmp_path / "state"
        n, alpha = 8, 0.8

        async def crash_drive():
            client = await AsyncDaemonClient.connect(path=socket_path)
            await client.hello("t")
            first = await client.release(_counts("t", 0, n), n=n, alpha=alpha)
            died = None
            try:
                # Appends so far: charge 0 (done marks are deferred to the
                # checkpoint sync and skip fault injection) — the second
                # append (this request's charge) tears mid-record and
                # kills the daemon.
                await client.release(_counts("t", 1, n), n=n, alpha=alpha)
            except (ConnectionError, OSError) as error:
                died = error
            await client.close()
            return first, died

        async def recovery_drive():
            client = await AsyncDaemonClient.connect(path=socket_path)
            hello = await client.hello("t")
            second = await client.release(
                _counts("t", 1, n), n=n, alpha=alpha, seq=1
            )
            stats = await client.stats()
            await client.shutdown()
            await client.close()
            return hello, second, stats

        crashed = _spawn_daemon(
            socket_path, state_dir, 0.5, fault_spec="torn_tenant_ledger:1"
        )
        try:
            first, died = run(crash_drive())
            assert crashed.wait(timeout=30) == KILLED_DAEMON_EXIT
        finally:
            if crashed.poll() is None:  # pragma: no cover - cleanup on failure
                crashed.kill()
                crashed.wait()
        assert first["code"] == OK and died is not None

        socket_path.unlink(missing_ok=True)
        restarted = _spawn_daemon(socket_path, state_dir, 0.5)
        try:
            hello, second, stats = run(recovery_drive())
            assert restarted.wait(timeout=30) == 0
        finally:
            if restarted.poll() is None:  # pragma: no cover - cleanup on failure
                restarted.kill()
                restarted.wait()

        # The torn charge was truncated away: only request 0 is durable,
        # and the re-sent request 1 serves fresh from spawn #1.
        assert hello["next_seq"] == 1
        assert hello["budget"]["alpha_spent"] == pytest.approx(alpha)
        assert second["code"] == OK and "replayed" not in second
        assert second["released"] == _engine_reference(
            "t", _counts("t", 1, n), n, alpha, "", requests_before=1
        )
        assert stats["tenant"]["budget"]["alpha_spent"] == pytest.approx(
            alpha * alpha
        )


class TestClientStallSubprocess:
    def test_stalled_client_reaped_while_daemon_serves_on(self, tmp_path):
        socket_path = tmp_path / "repro.sock"
        state_dir = tmp_path / "state"
        n, alpha = 8, 0.8

        async def drive():
            stalled = await AsyncDaemonClient.connect(path=socket_path)
            await stalled.hello("stalled")          # response write #0
            first = await stalled.release(          # write #1: stalls
                _counts("stalled", 0, n), n=n, alpha=alpha
            )
            healthy = await AsyncDaemonClient.connect(path=socket_path)
            await healthy.hello("fine")
            served = await healthy.release(
                _counts("fine", 0, n), n=n, alpha=alpha
            )
            deadline = time.monotonic() + 10.0
            reaped = 0
            while time.monotonic() < deadline:
                health = (await healthy.health())["health"]
                reaped = health["clients_reaped"]
                if reaped:
                    break
                await asyncio.sleep(0.05)
            # The reaped connection is dead for the stalled client too.
            stalled_dead = False
            try:
                await stalled.release(_counts("stalled", 1, n), n=n, alpha=alpha)
            except (ConnectionError, OSError):
                stalled_dead = True
            await stalled.close()
            await healthy.shutdown()
            await healthy.close()
            return first, served, reaped, stalled_dead

        process = _spawn_daemon(
            socket_path, state_dir, 0.3,
            fault_spec="client_stall:1",
            extra=("--client-timeout", "0.3"),
        )
        try:
            first, served, reaped, stalled_dead = run(drive())
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup on failure
                process.kill()
                process.wait()

        assert first["code"] == OK  # the bytes were flushed before the stall
        assert served["code"] == OK  # the batcher never waited on the staller
        assert served["released"] == _engine_reference(
            "fine", _counts("fine", 0, n), n, alpha, ""
        )
        assert reaped == 1
        assert stalled_dead


class TestAmbientIoErrors:
    def test_io_error_storm_converges_bit_identically(self, tmp_path):
        """Random ledger-append failures: retries converge, charged once each.

        ``io_error:0.3`` fails ~30% of tenant-ledger appends with an
        ``OSError`` *before* anything reaches the log — the daemon answers
        a retriable code-2 and consumes nothing, so re-sending the same
        ``seq`` eventually lands every request with exactly the bits and
        spend of a fault-free run.
        """
        n, alpha, requests = 8, 0.8, 6

        async def scenario():
            daemon = ServingDaemon(
                batch_window_ms=0.0, seed=SEED,
                state_dir=tmp_path / "state", budget_alpha=0.25,
            )
            await daemon.start(port=0)
            client = await AsyncDaemonClient.connect(
                host="127.0.0.1", port=daemon.port
            )
            await client.hello("t")
            served = []
            retries = 0
            for i in range(requests):
                while True:
                    r = await client.release(
                        _counts("t", i, n), n=n, alpha=alpha, seq=i
                    )
                    if r["code"] == OK:
                        served.append(r)
                        break
                    assert r.get("retriable") is True, r
                    retries += 1
                    assert retries < 200, "io_error storm never converged"
            spent = daemon._tenants["t"].accountant.spent_alpha()
            stats = daemon.stats_payload()
            await client.close()
            await daemon.stop()
            return served, spent, retries, stats

        with faults.injected("io_error:0.3"):
            served, spent, retries, stats = run(scenario())

        assert retries > 0, "the storm injected no failures at rate 0.3"
        assert stats["ledger_errors"] >= retries
        assert spent == pytest.approx(alpha ** requests)
        for i, response in enumerate(served):
            assert response["released"] == _engine_reference(
                "t", _counts("t", i, n), n, alpha, "", requests_before=i
            )
