"""Tests for the parameter sweep driver (repro.eval.sweep)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.groups import GroupedCounts
from repro.eval.sweep import SweepResult, sweep
from repro.mechanisms.uniform import uniform_mechanism


class TestSweep:
    def test_grid_dimensions(self):
        result = sweep(
            alphas=[0.67, 0.91],
            group_sizes=[4],
            probabilities=[0.3, 0.5],
            mechanisms=("GM", "UM"),
            repetitions=2,
            num_groups=50,
            seed=3,
        )
        # 2 alphas x 1 group size x 2 probabilities x 2 mechanisms = 8 rows.
        assert len(result.rows) == 8
        assert {row["mechanism"] for row in result.rows} == {"GM", "UM"}

    def test_rows_contain_metrics_and_parameters(self):
        result = sweep(
            alphas=[0.8],
            group_sizes=[3],
            probabilities=[0.5],
            mechanisms=("GM",),
            repetitions=2,
            num_groups=30,
            seed=1,
        )
        row = result.rows[0]
        for key in ("mechanism", "alpha", "group_size", "probability", "error_rate", "rmse"):
            assert key in row

    def test_prebuilt_mechanism_objects_accepted(self):
        result = sweep(
            alphas=[0.8],
            group_sizes=[4],
            probabilities=[0.5],
            mechanisms=(uniform_mechanism(4),),
            repetitions=2,
            num_groups=20,
            seed=2,
        )
        assert result.rows[0]["mechanism"] == "UM"

    def test_external_data_override(self):
        counts = GroupedCounts(counts=np.array([0, 1, 2, 2, 1]), group_size=4, label="fixed")
        result = sweep(
            alphas=[0.8],
            group_sizes=[4],
            probabilities=[0.5],
            mechanisms=("UM",),
            repetitions=2,
            num_groups=999,
            seed=4,
            data={(4, 0.5): counts},
        )
        assert result.rows[0]["num_groups"] == 5

    def test_reproducible_with_seed(self):
        kwargs = dict(
            alphas=[0.9],
            group_sizes=[4],
            probabilities=[0.5],
            mechanisms=("GM",),
            repetitions=3,
            num_groups=40,
            seed=11,
        )
        first = sweep(**kwargs)
        second = sweep(**kwargs)
        assert first.rows[0]["error_rate"] == second.rows[0]["error_rate"]


class TestSweepResult:
    @pytest.fixture
    def result(self):
        return SweepResult(
            rows=[
                {"mechanism": "GM", "alpha": 0.9, "group_size": 4, "error_rate": 0.8},
                {"mechanism": "GM", "alpha": 0.9, "group_size": 8, "error_rate": 0.9},
                {"mechanism": "EM", "alpha": 0.9, "group_size": 4, "error_rate": 0.7},
            ]
        )

    def test_filter(self, result):
        assert len(result.filter(mechanism="GM").rows) == 2
        assert len(result.filter(mechanism="GM", group_size=8).rows) == 1

    def test_column(self, result):
        assert result.column("mechanism") == ["GM", "GM", "EM"]

    def test_series_groups_and_sorts(self, result):
        series = result.series(x="group_size", y="error_rate")
        assert series["GM"] == [(4, 0.8), (8, 0.9)]
        assert series["EM"] == [(4, 0.7)]

    def test_table_and_csv(self, result, tmp_path):
        assert "mechanism" in result.to_table()
        csv_text = result.to_csv(path=tmp_path / "sweep.csv")
        assert (tmp_path / "sweep.csv").read_text() == csv_text

    def test_extend(self, result):
        other = SweepResult(rows=[{"mechanism": "UM"}])
        result.extend(other)
        assert len(result.rows) == 4


class TestParallelDesignStage:
    def test_parallel_sweep_matches_serial_exactly(self):
        """max_workers only parallelises LP design; every row must be identical."""
        kwargs = dict(
            alphas=[0.67, 0.91],
            group_sizes=[3, 5],
            probabilities=[0.5],
            mechanisms=("GM", "WM", "UM"),
            repetitions=2,
            num_groups=50,
            seed=11,
        )
        serial = sweep(**kwargs)
        parallel = sweep(max_workers=2, **kwargs)
        assert serial.rows == parallel.rows

    def test_default_max_workers_round_trips(self):
        import importlib

        from repro.eval.sweep import set_default_max_workers

        sweep_module = importlib.import_module("repro.eval.sweep")
        previous = set_default_max_workers(4)
        try:
            assert sweep_module.DEFAULT_MAX_WORKERS == 4
        finally:
            restored = set_default_max_workers(previous)
            assert restored == 4
