"""Tests for the Figure 8 and Figure 9 experiment drivers (analytic L0 sweeps)."""

from __future__ import annotations

import pytest

from repro.core.theory import em_l0_score, gm_l0_score, weak_honesty_threshold
from repro.experiments import fig08_wh_combinations, fig09_l0_vs_n


class TestFigure8:
    @pytest.fixture(scope="class")
    def result(self):
        # A reduced grid keeps the test quick while covering both regimes of
        # panel (a) and both panels.
        return fig08_wh_combinations.run(
            alpha=0.76,
            group_sizes=(4, 8),
            alphas=(0.5, 0.91),
            panel_b_group_size=6,
        )

    def test_nine_combinations_per_grid_point(self, result):
        panel_a_n4 = [row for row in result.rows if row["panel"] == "a" and row["group_size"] == 4]
        assert len(panel_a_n4) == 9

    def test_costs_bounded_by_gm_and_em(self, result):
        for row in result.rows:
            assert row["gm_l0"] - 1e-7 <= row["l0_score"] <= row["em_l0"] + 1e-6

    def test_row_only_combinations_cost_gm_above_threshold(self, result):
        # alpha = 0.76 -> threshold 6.33; at n = 8 the WH+row-only combinations
        # collapse onto GM's cost (Figure 8a / Lemma 2).
        rows = [
            row
            for row in result.rows
            if row["panel"] == "a"
            and row["group_size"] == 8
            and not row["includes_column_property"]
        ]
        assert rows and all(row["matches"] == "GM" for row in rows)

    def test_row_only_combinations_cost_more_below_threshold(self, result):
        rows = [
            row
            for row in result.rows
            if row["panel"] == "a"
            and row["group_size"] == 4
            and not row["includes_column_property"]
        ]
        assert rows and all(row["l0_score"] > row["gm_l0"] + 1e-7 for row in rows)

    def test_column_combinations_cost_at_least_row_combinations(self, result):
        for panel, key in (("a", "group_size"), ("b", "alpha")):
            rows = [row for row in result.rows if row["panel"] == panel]
            points = {row[key] for row in rows}
            for point in points:
                with_column = [
                    row["l0_score"]
                    for row in rows
                    if row[key] == point and row["includes_column_property"]
                ]
                without_column = [
                    row["l0_score"]
                    for row in rows
                    if row[key] == point and not row["includes_column_property"]
                ]
                assert min(with_column) >= max(without_column) - 1e-7

    def test_low_alpha_all_combinations_collapse_to_gm(self, result):
        # Panel (b) at alpha = 0.5: GM itself is column monotone (Lemma 3), so
        # every combination costs exactly 2*0.5/1.5.
        rows = [row for row in result.rows if row["panel"] == "b" and row["alpha"] == 0.5]
        assert rows
        for row in rows:
            assert row["l0_score"] == pytest.approx(gm_l0_score(0.5), abs=1e-6)

    def test_only_two_distinct_behaviours(self, result):
        # Section V-A's headline: the optimal values cluster on at most two
        # levels per grid point (the GM level and the EM/column level).
        for panel in ("a", "b"):
            rows = [row for row in result.rows if row["panel"] == panel]
            key = "group_size" if panel == "a" else "alpha"
            for point in {row[key] for row in rows}:
                values = sorted(
                    row["l0_score"] for row in rows if row[key] == point
                )
                distinct = [values[0]]
                for value in values[1:]:
                    if value > distinct[-1] + 1e-6:
                        distinct.append(value)
                assert len(distinct) <= 2, (panel, point, distinct)


class TestFigure9:
    @pytest.fixture(scope="class")
    def result(self):
        return fig09_l0_vs_n.run(
            alphas=(2.0 / 3.0, 10.0 / 11.0),
            group_sizes=(2, 4, 8, 16, 20, 24),
        )

    def test_series_structure(self, result):
        series = result.series(x="group_size", y="l0_score")
        assert set(series) == {"GM", "EM", "UM", "WM"}

    def test_closed_forms_recorded_and_matched(self, result):
        for row in result.rows:
            if row["mechanism"] == "GM":
                assert row["l0_score"] == pytest.approx(gm_l0_score(row["alpha"]))
            if row["mechanism"] == "EM":
                assert row["l0_score"] == pytest.approx(
                    em_l0_score(row["group_size"], row["alpha"])
                )
            if row["mechanism"] == "UM":
                assert row["l0_score"] == pytest.approx(1.0)

    def test_wm_converges_to_gm_at_lemma2_threshold(self, result):
        alpha = 10.0 / 11.0
        threshold = weak_honesty_threshold(alpha)  # exactly 20
        assert threshold == pytest.approx(20.0)
        for row in result.rows:
            if row["mechanism"] != "WM" or row["alpha"] != pytest.approx(alpha):
                continue
            gap = row["l0_score"] - gm_l0_score(alpha)
            if row["group_size"] >= threshold:
                assert gap == pytest.approx(0.0, abs=1e-6)
            else:
                assert gap > 1e-6

    def test_wm_always_sandwiched(self, result):
        for row in result.rows:
            if row["mechanism"] == "WM":
                assert gm_l0_score(row["alpha"]) - 1e-7 <= row["l0_score"]
                assert row["l0_score"] <= em_l0_score(row["group_size"], row["alpha"]) + 1e-6

    def test_em_premium_shrinks_with_group_size(self, result):
        # Figure 9(a): EM's cost approaches GM's 2α/(1+α) from above as n grows
        # (there is a small odd/even wobble, so compare the ends of the range).
        alpha = 2.0 / 3.0
        em_rows = sorted(
            (row["group_size"], row["l0_score"])
            for row in result.rows
            if row["mechanism"] == "EM" and row["alpha"] == pytest.approx(alpha)
        )
        smallest_n_value = em_rows[0][1]
        largest_n, largest_n_value = em_rows[-1]
        assert largest_n_value < smallest_n_value
        # The premium over GM is roughly the factor (n + 1)/n (Section I).
        assert largest_n_value == pytest.approx(
            gm_l0_score(alpha) * (largest_n + 1) / largest_n, abs=0.01
        )

    def test_skip_wm_mode(self):
        quick = fig09_l0_vs_n.run(alphas=(0.9,), group_sizes=(2, 4), include_wm=False)
        assert {row["mechanism"] for row in quick.rows} == {"GM", "EM", "UM"}
