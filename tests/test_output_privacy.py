"""Tests for the output-side DP extension (repro.core.output_privacy)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.design import design_mechanism
from repro.core.losses import l0_score
from repro.core.output_privacy import (
    bidirectional_private,
    em_satisfies_output_dp,
    gm_output_alpha,
    gm_satisfies_output_dp,
    max_output_alpha,
    satisfies_output_dp,
)
from repro.core.theory import em_l0_score, gm_l0_score
from repro.mechanisms.fair import explicit_fair_mechanism
from repro.mechanisms.geometric import geometric_mechanism
from repro.mechanisms.uniform import uniform_mechanism


class TestCheckers:
    def test_uniform_mechanism_has_output_alpha_one(self):
        um = uniform_mechanism(5)
        assert max_output_alpha(um) == pytest.approx(1.0)
        assert satisfies_output_dp(um, 1.0)

    def test_identity_fails_any_positive_beta(self):
        identity = np.eye(4)
        assert max_output_alpha(identity) == 0.0
        assert not satisfies_output_dp(identity, 0.1)
        assert satisfies_output_dp(identity, 0.0)

    def test_em_satisfies_output_dp_at_its_own_alpha(self):
        for n, alpha in [(4, 0.9), (7, 0.62), (10, 0.95)]:
            em = explicit_fair_mechanism(n, alpha)
            assert satisfies_output_dp(em, alpha)
            assert max_output_alpha(em) >= alpha - 1e-12
            assert em_satisfies_output_dp(alpha)

    @pytest.mark.parametrize("alpha", [0.3, 0.5, 0.6, 0.62, 0.7, 0.9])
    def test_gm_output_alpha_closed_form_matches_matrix(self, alpha):
        gm = geometric_mechanism(6, alpha)
        assert max_output_alpha(gm) == pytest.approx(gm_output_alpha(alpha))
        # The closed-form predicate agrees with the matrix check at any level.
        for beta in (0.1, alpha * (1 - alpha), alpha):
            assert gm_satisfies_output_dp(alpha, beta) == satisfies_output_dp(gm, beta)

    @pytest.mark.parametrize("alpha", [0.1, 0.5, 0.9])
    def test_gm_never_meets_the_symmetric_requirement(self, alpha):
        # The clamping rows tower over their neighbours by 1/(alpha(1-alpha)).
        assert not gm_satisfies_output_dp(alpha)
        assert not satisfies_output_dp(geometric_mechanism(6, alpha), alpha)

    def test_gm_binding_ratio_is_alpha_times_one_minus_alpha(self):
        alpha = 0.8
        gm = geometric_mechanism(6, alpha)
        assert max_output_alpha(gm) == pytest.approx(alpha * (1 - alpha))

    def test_bidirectional_check_combines_both_directions(self):
        em = explicit_fair_mechanism(6, 0.8)
        gm = geometric_mechanism(6, 0.8)
        assert bidirectional_private(em, 0.8)
        assert not bidirectional_private(gm, 0.8)
        # A weaker output requirement can still be met by GM: 0.8 * 0.2 = 0.16.
        assert bidirectional_private(gm, 0.8, beta=0.15)

    def test_invalid_beta_rejected(self):
        with pytest.raises(ValueError):
            satisfies_output_dp(np.eye(3), 1.5)
        with pytest.raises(ValueError):
            gm_satisfies_output_dp(-0.2)


class TestOutputDpInDesign:
    def test_designed_mechanism_satisfies_output_dp(self):
        mechanism = design_mechanism(6, 0.9, properties=(), output_alpha=0.9)
        assert satisfies_output_dp(mechanism, 0.9, tolerance=1e-6)
        assert mechanism.max_alpha() >= 0.9 - 1e-6
        assert mechanism.metadata["output_alpha"] == 0.9

    def test_output_dp_costs_at_most_the_em_level(self):
        # EM is feasible for the augmented LP, so the optimum is no worse.
        n, alpha = 6, 0.9
        mechanism = design_mechanism(n, alpha, properties=(), output_alpha=alpha)
        assert gm_l0_score(alpha) - 1e-9 <= l0_score(mechanism) <= em_l0_score(n, alpha) + 1e-7

    def test_output_dp_always_costs_something_but_never_more_than_em(self):
        # GM never satisfies the symmetric requirement, so the constraint has
        # a strictly positive cost; EM is always feasible, bounding it above.
        n, alpha = 6, 0.5
        constrained = design_mechanism(n, alpha, properties=(), output_alpha=alpha)
        assert l0_score(constrained) > gm_l0_score(alpha) + 1e-7
        assert l0_score(constrained) <= em_l0_score(n, alpha) + 1e-7

    def test_output_dp_combines_with_structural_properties(self):
        mechanism = design_mechanism(5, 0.85, properties="all", output_alpha=0.85)
        from repro.core.properties import check_all_properties

        assert all(check_all_properties(mechanism, tolerance=1e-6).values())
        assert satisfies_output_dp(mechanism, 0.85, tolerance=1e-6)
        # All properties + output DP is exactly what EM provides, at EM's cost.
        assert l0_score(mechanism) == pytest.approx(em_l0_score(5, 0.85), abs=1e-7)

    def test_invalid_output_alpha_rejected(self):
        from repro.core.constraints import MechanismLPBuilder

        builder = MechanismLPBuilder(n=3, alpha=0.5)
        with pytest.raises(ValueError):
            builder.add_output_dp(1.7)
