"""Unit tests for the structural properties (repro.core.properties)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.properties import (
    ALL_PROPERTIES,
    StructuralProperty,
    check_all_properties,
    combination_label,
    has_gap,
    implied_closure,
    is_column_honest,
    is_column_monotone,
    is_fair,
    is_row_honest,
    is_row_monotone,
    is_symmetric,
    is_weakly_honest,
    meaningful_weak_honesty_combinations,
    minimal_representation,
    parse_properties,
    satisfies_all,
    satisfies_differential_privacy,
    satisfies_property,
    spike_ratio,
    violations,
)
from repro.mechanisms.fair import explicit_fair_mechanism
from repro.mechanisms.geometric import geometric_mechanism
from repro.mechanisms.uniform import uniform_mechanism

RH = StructuralProperty.ROW_HONESTY
RM = StructuralProperty.ROW_MONOTONE
CH = StructuralProperty.COLUMN_HONESTY
CM = StructuralProperty.COLUMN_MONOTONE
F = StructuralProperty.FAIRNESS
WH = StructuralProperty.WEAK_HONESTY
S = StructuralProperty.SYMMETRY


class TestParsing:
    def test_parse_none_and_empty(self):
        assert parse_properties(None) == frozenset()
        assert parse_properties("") == frozenset()
        assert parse_properties([]) == frozenset()

    def test_parse_string_forms(self):
        assert parse_properties("WH") == {WH}
        assert parse_properties("WH+CM") == {WH, CM}
        assert parse_properties("rh, s") == {RH, S}
        assert parse_properties("all") == set(ALL_PROPERTIES)

    def test_parse_full_names_and_aliases(self):
        assert parse_properties(["fairness", "symmetric"]) == {F, S}
        assert parse_properties("row_monotonicity") == {RM}
        assert parse_properties(WH) == {WH}

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError):
            parse_properties("XYZ")

    def test_combination_label_ordering(self):
        assert combination_label({CM, WH}) == "CM+WH"
        assert combination_label([]) == "(none)"


class TestImplicationLattice:
    def test_single_property_implications(self):
        assert CH in implied_closure({CM})
        assert WH in implied_closure({CM})
        assert RH in implied_closure({RM})
        assert WH in implied_closure({CH})

    def test_fairness_joint_implications(self):
        assert CH in implied_closure({F, RH})
        assert RH in implied_closure({F, CH})
        # Fairness alone implies neither.
        closure = implied_closure({F})
        assert CH not in closure and RH not in closure

    def test_minimal_representation_drops_implied(self):
        minimal = minimal_representation({RM, RH, CM, CH, WH})
        assert minimal == {RM, CM}

    def test_minimal_representation_keeps_independent(self):
        assert minimal_representation({S, WH}) == {S, WH}

    def test_meaningful_wh_combinations(self):
        combos = meaningful_weak_honesty_combinations()
        assert len(combos) == 9
        assert all(WH in combo for combo in combos)
        # All combinations are distinct.
        assert len(set(combos)) == 9


class TestCheckersOnNamedMechanisms:
    def test_gm_properties(self):
        gm = geometric_mechanism(7, 0.62)
        report = check_all_properties(gm)
        assert report[S] and report[RM] and report[RH]
        assert not report[F]
        # alpha = 0.62 > 0.5 so no column monotonicity (Lemma 3)...
        assert not report[CM]
        # ...but n = 7 >= 2*0.62/0.38 = 3.26 so weak honesty holds (Lemma 2).
        assert report[WH]

    def test_gm_loses_weak_honesty_for_small_n_large_alpha(self):
        gm = geometric_mechanism(2, 0.9)
        assert not is_weakly_honest(gm)
        assert not is_column_honest(gm)

    def test_gm_column_monotone_at_low_alpha(self):
        gm = geometric_mechanism(6, 0.4)
        assert is_column_monotone(gm)
        assert is_column_honest(gm)

    def test_em_satisfies_everything(self):
        for n, alpha in [(4, 0.9), (7, 0.62), (8, 0.91), (11, 0.99)]:
            em = explicit_fair_mechanism(n, alpha)
            assert all(check_all_properties(em).values()), (n, alpha)

    def test_um_satisfies_everything(self):
        um = uniform_mechanism(6)
        assert all(check_all_properties(um).values())


class TestCheckersOnHandCraftedMatrices:
    def test_row_honesty_violation(self):
        matrix = np.array(
            [
                [0.2, 0.6, 0.2],
                [0.4, 0.2, 0.4],
                [0.4, 0.2, 0.4],
            ]
        )
        assert not is_row_honest(matrix)
        assert is_column_honest(matrix) is False

    def test_row_monotone_requires_decay_from_diagonal(self):
        # Row 0 increases away from the diagonal -> not row monotone.
        matrix = np.array(
            [
                [0.5, 0.2, 0.6],
                [0.3, 0.6, 0.2],
                [0.2, 0.2, 0.2],
            ]
        )
        assert not is_row_monotone(matrix)

    def test_monotone_implies_honest_numerically(self):
        em = explicit_fair_mechanism(6, 0.8).matrix
        assert is_row_monotone(em) and is_row_honest(em)
        assert is_column_monotone(em) and is_column_honest(em)

    def test_fairness_checker(self):
        fair = np.full((3, 3), 1.0 / 3.0)
        assert is_fair(fair)
        unfair = np.array(
            [
                [0.5, 0.3, 0.3],
                [0.25, 0.4, 0.3],
                [0.25, 0.3, 0.4],
            ]
        )
        assert not is_fair(unfair)

    def test_weak_honesty_threshold_is_uniform(self):
        # Diagonal exactly 1/(n+1) counts as weakly honest.
        assert is_weakly_honest(np.full((4, 4), 0.25))

    def test_symmetry_checker_is_centrosymmetry(self):
        matrix = np.array(
            [
                [0.6, 0.3, 0.1],
                [0.3, 0.4, 0.3],
                [0.1, 0.3, 0.6],
            ]
        )
        assert is_symmetric(matrix)
        # An ordinary (transpose-)symmetric matrix need not be centrosymmetric.
        other = np.array(
            [
                [0.7, 0.3, 0.1],
                [0.2, 0.4, 0.3],
                [0.1, 0.3, 0.6],
            ]
        )
        assert not is_symmetric(other)

    def test_checkers_reject_non_square_input(self):
        with pytest.raises(ValueError):
            is_row_honest(np.ones((2, 3)))


class TestDifferentialPrivacyChecker:
    def test_gm_is_exactly_alpha_private(self):
        gm = geometric_mechanism(5, 0.7)
        assert satisfies_differential_privacy(gm, 0.7)
        assert not satisfies_differential_privacy(gm, 0.75)

    def test_identity_violates_any_positive_alpha(self):
        assert not satisfies_differential_privacy(np.eye(4), 0.1)
        assert satisfies_differential_privacy(np.eye(4), 0.0)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            satisfies_differential_privacy(np.eye(3), 2.0)


class TestDispatchHelpers:
    def test_satisfies_property_by_code(self, em_small):
        for prop in ALL_PROPERTIES:
            assert satisfies_property(em_small, prop.value)

    def test_satisfies_all_and_violations(self):
        gm = geometric_mechanism(3, 0.9)
        assert satisfies_all(gm, {S, RM})
        assert not satisfies_all(gm, {S, F})
        assert violations(gm, {S, F, CM}) == [CM, F]

    def test_check_all_properties_keys(self, um_small):
        report = check_all_properties(um_small)
        assert set(report) == set(ALL_PROPERTIES)


class TestDegeneracyDiagnostics:
    def test_has_gap_detects_zero_rows(self):
        matrix = np.array(
            [
                [0.5, 0.5, 0.5],
                [0.5, 0.5, 0.5],
                [0.0, 0.0, 0.0],
            ]
        )
        assert has_gap(matrix)
        assert not has_gap(uniform_mechanism(4))

    def test_spike_ratio_of_degenerate_mechanism(self):
        # "Always report output 1" has spike ratio n + 1 = 3.
        always_one = np.array(
            [
                [0.0, 0.0, 0.0],
                [1.0, 1.0, 1.0],
                [0.0, 0.0, 0.0],
            ]
        )
        assert spike_ratio(always_one) == pytest.approx(3.0)
        assert spike_ratio(uniform_mechanism(2)) == pytest.approx(1.0)
