"""Tests for the LP constraint builder (repro.core.constraints)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.constraints import MechanismLPBuilder, build_mechanism_lp
from repro.core.losses import Objective
from repro.core.properties import ALL_PROPERTIES, StructuralProperty, check_all_properties
from repro.core.design import solve_mechanism_lp
from repro.lp.model import ConstraintSense
from repro.lp.solver import solve


class TestBuilderStructure:
    def test_variable_grid_size(self):
        builder = MechanismLPBuilder(n=4, alpha=0.7)
        assert builder.program.num_variables == 25
        assert len(builder.variables) == 5
        assert all(len(row) == 5 for row in builder.variables)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            MechanismLPBuilder(n=0, alpha=0.5)
        with pytest.raises(ValueError):
            MechanismLPBuilder(n=4, alpha=1.5)

    def test_basic_dp_constraint_counts(self):
        n = 4
        builder = MechanismLPBuilder(n=n, alpha=0.7)
        builder.add_basic_dp()
        size = n + 1
        # column sums + two DP inequalities per (row, adjacent column pair)
        expected = size + 2 * size * n
        assert builder.program.num_constraints == expected

    def test_basic_dp_added_once(self):
        builder = MechanismLPBuilder(n=3, alpha=0.5)
        builder.add_basic_dp()
        count = builder.program.num_constraints
        builder.add_basic_dp()
        assert builder.program.num_constraints == count

    def test_property_added_once(self):
        builder = MechanismLPBuilder(n=3, alpha=0.5)
        builder.add_property("WH")
        count = builder.program.num_constraints
        builder.add_property(StructuralProperty.WEAK_HONESTY)
        assert builder.program.num_constraints == count

    def test_symmetry_constraints_are_equalities(self):
        builder = MechanismLPBuilder(n=3, alpha=0.5)
        builder.add_property("S")
        senses = {c.sense for c in builder.program.constraints if c.name.startswith("symmetry")}
        assert senses == {ConstraintSense.EQ}

    def test_build_installs_defaults(self):
        mechanism_lp = MechanismLPBuilder(n=3, alpha=0.5).build()
        assert mechanism_lp.objective.describe() == "L0 (sum)"
        assert mechanism_lp.program.num_constraints > 0

    def test_minimax_objective_adds_auxiliary_variable(self):
        builder = MechanismLPBuilder(n=3, alpha=0.5)
        builder.add_basic_dp()
        builder.set_objective(Objective.minimax(p=1))
        mechanism_lp = builder.build()
        assert mechanism_lp.auxiliary is not None
        assert mechanism_lp.program.num_variables == 16 + 1


class TestSolvedConstraints:
    @pytest.mark.parametrize("prop", [p.value for p in ALL_PROPERTIES])
    def test_each_property_is_enforced_by_its_constraints(self, prop):
        mechanism_lp = build_mechanism_lp(n=4, alpha=0.8, properties=[prop])
        mechanism = solve_mechanism_lp(mechanism_lp)
        report = check_all_properties(mechanism, tolerance=1e-6)
        assert report[StructuralProperty.coerce(prop)], prop

    def test_dp_enforced_on_solution(self):
        mechanism_lp = build_mechanism_lp(n=5, alpha=0.77)
        mechanism = solve_mechanism_lp(mechanism_lp)
        assert mechanism.max_alpha() >= 0.77 - 1e-7

    def test_matrix_from_values_is_column_stochastic(self):
        mechanism_lp = build_mechanism_lp(n=4, alpha=0.6, properties="WH")
        solution = solve(mechanism_lp.program)
        matrix = mechanism_lp.matrix_from_values(solution.values)
        assert np.allclose(matrix.sum(axis=0), 1.0)
        assert matrix.min() >= 0.0

    def test_minimax_l1_no_worse_than_expected_l1_optimum(self):
        # The minimax optimum bounds every column's loss, so its worst column
        # is no worse than the worst column of the expectation-optimal design.
        from repro.core.losses import worst_case_loss

        expectation_lp = build_mechanism_lp(n=4, alpha=0.7, objective=Objective.l1())
        minimax_lp = build_mechanism_lp(n=4, alpha=0.7, objective=Objective.minimax(p=1))
        expectation_mechanism = solve_mechanism_lp(expectation_lp)
        minimax_mechanism = solve_mechanism_lp(minimax_lp)
        assert worst_case_loss(minimax_mechanism, p=1) <= worst_case_loss(
            expectation_mechanism, p=1
        ) + 1e-7
