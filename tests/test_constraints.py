"""Tests for the LP constraint builder (repro.core.constraints)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.constraints import MechanismLPBuilder, build_mechanism_lp
from repro.core.losses import Objective
from repro.core.properties import ALL_PROPERTIES, StructuralProperty, check_all_properties
from repro.core.design import solve_mechanism_lp
from repro.lp.model import ConstraintSense
from repro.lp.solver import solve


class TestBuilderStructure:
    def test_variable_grid_size(self):
        builder = MechanismLPBuilder(n=4, alpha=0.7)
        assert builder.program.num_variables == 25
        assert len(builder.variables) == 5
        assert all(len(row) == 5 for row in builder.variables)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            MechanismLPBuilder(n=0, alpha=0.5)
        with pytest.raises(ValueError):
            MechanismLPBuilder(n=4, alpha=1.5)

    def test_basic_dp_constraint_counts(self):
        n = 4
        builder = MechanismLPBuilder(n=n, alpha=0.7)
        builder.add_basic_dp()
        size = n + 1
        # column sums + two DP inequalities per (row, adjacent column pair)
        expected = size + 2 * size * n
        assert builder.program.num_constraints == expected

    def test_basic_dp_added_once(self):
        builder = MechanismLPBuilder(n=3, alpha=0.5)
        builder.add_basic_dp()
        count = builder.program.num_constraints
        builder.add_basic_dp()
        assert builder.program.num_constraints == count

    def test_property_added_once(self):
        builder = MechanismLPBuilder(n=3, alpha=0.5)
        builder.add_property("WH")
        count = builder.program.num_constraints
        builder.add_property(StructuralProperty.WEAK_HONESTY)
        assert builder.program.num_constraints == count

    def test_symmetry_constraints_are_equalities(self):
        builder = MechanismLPBuilder(n=3, alpha=0.5)
        builder.add_property("S")
        senses = {c.sense for c in builder.program.constraints if c.name.startswith("symmetry")}
        assert senses == {ConstraintSense.EQ}

    def test_build_installs_defaults(self):
        mechanism_lp = MechanismLPBuilder(n=3, alpha=0.5).build()
        assert mechanism_lp.objective.describe() == "L0 (sum)"
        assert mechanism_lp.program.num_constraints > 0

    def test_minimax_objective_adds_auxiliary_variable(self):
        builder = MechanismLPBuilder(n=3, alpha=0.5)
        builder.add_basic_dp()
        builder.set_objective(Objective.minimax(p=1))
        mechanism_lp = builder.build()
        assert mechanism_lp.auxiliary is not None
        assert mechanism_lp.program.num_variables == 16 + 1


class TestSolvedConstraints:
    @pytest.mark.parametrize("prop", [p.value for p in ALL_PROPERTIES])
    def test_each_property_is_enforced_by_its_constraints(self, prop):
        mechanism_lp = build_mechanism_lp(n=4, alpha=0.8, properties=[prop])
        mechanism = solve_mechanism_lp(mechanism_lp)
        report = check_all_properties(mechanism, tolerance=1e-6)
        assert report[StructuralProperty.coerce(prop)], prop

    def test_dp_enforced_on_solution(self):
        mechanism_lp = build_mechanism_lp(n=5, alpha=0.77)
        mechanism = solve_mechanism_lp(mechanism_lp)
        assert mechanism.max_alpha() >= 0.77 - 1e-7

    def test_matrix_from_values_is_column_stochastic(self):
        mechanism_lp = build_mechanism_lp(n=4, alpha=0.6, properties="WH")
        solution = solve(mechanism_lp.program)
        matrix = mechanism_lp.matrix_from_values(solution.values)
        assert np.allclose(matrix.sum(axis=0), 1.0)
        assert matrix.min() >= 0.0

    def test_minimax_l1_no_worse_than_expected_l1_optimum(self):
        # The minimax optimum bounds every column's loss, so its worst column
        # is no worse than the worst column of the expectation-optimal design.
        from repro.core.losses import worst_case_loss

        expectation_lp = build_mechanism_lp(n=4, alpha=0.7, objective=Objective.l1())
        minimax_lp = build_mechanism_lp(n=4, alpha=0.7, objective=Objective.minimax(p=1))
        expectation_mechanism = solve_mechanism_lp(expectation_lp)
        minimax_mechanism = solve_mechanism_lp(minimax_lp)
        assert worst_case_loss(minimax_mechanism, p=1) <= worst_case_loss(
            expectation_mechanism, p=1
        ) + 1e-7


# --------------------------------------------------------------------- #
# Vectorized emitters versus the loop-based reference
# --------------------------------------------------------------------- #
def _assert_same_program(vectorized, loop_based):
    """Both builders must emit the identical constraint system.

    Identical means: same constraint order, names, senses, right-hand sides
    and per-row coefficient dictionaries, plus the same objective vector.
    """
    program_v, program_l = vectorized.program, loop_based.program
    assert program_v.num_variables == program_l.num_variables
    assert program_v.num_constraints == program_l.num_constraints
    for got, expected in zip(program_v.constraints, program_l.constraints):
        assert got.name == expected.name
        assert got.sense is expected.sense
        assert got.rhs == expected.rhs
        assert got.coefficients == expected.coefficients, got.name
    assert np.array_equal(program_v.objective_vector(), program_l.objective_vector())
    assert program_v.objective_sense is program_l.objective_sense


def _property_combinations():
    import itertools

    codes = [prop.value for prop in ALL_PROPERTIES]
    for r in range(len(codes) + 1):
        yield from itertools.combinations(codes, r)


class TestVectorizedEmitterEquivalence:
    @pytest.mark.parametrize("n", [1, 4, 5])
    def test_every_property_combination_matches_loop_builder(self, n):
        """Property-style exhaustive check over all 2^7 property subsets."""
        for combo in _property_combinations():
            vectorized = build_mechanism_lp(n, 0.73, properties=combo, vectorized=True)
            loop_based = build_mechanism_lp(n, 0.73, properties=combo, vectorized=False)
            _assert_same_program(vectorized, loop_based)

    @pytest.mark.parametrize("alpha", [0.0, 0.5, 1.0])
    def test_alpha_edge_cases_match(self, alpha):
        # alpha = 0 exercises the zero-coefficient dropping path.
        vectorized = build_mechanism_lp(4, alpha, properties="all", vectorized=True)
        loop_based = build_mechanism_lp(4, alpha, properties="all", vectorized=False)
        _assert_same_program(vectorized, loop_based)

    @pytest.mark.parametrize(
        "objective",
        [Objective.l1(), Objective.l2(), Objective.l0d(2), Objective.minimax(p=1)],
        ids=["l1", "l2", "l0d2", "minimax"],
    )
    def test_objectives_match(self, objective):
        vectorized = build_mechanism_lp(5, 0.8, objective=objective, vectorized=True)
        loop_based = build_mechanism_lp(5, 0.8, objective=objective, vectorized=False)
        _assert_same_program(vectorized, loop_based)

    def test_weighted_objective_matches(self):
        weights = [1.0, 2.0, 3.0, 2.0, 1.0, 0.5]
        vectorized = build_mechanism_lp(
            5, 0.8, objective=Objective.l0(weights=weights), vectorized=True
        )
        loop_based = build_mechanism_lp(
            5, 0.8, objective=Objective.l0(weights=weights), vectorized=False
        )
        _assert_same_program(vectorized, loop_based)

    @pytest.mark.parametrize("output_alpha", [0.0, 0.6])
    def test_output_dp_matches(self, output_alpha):
        vectorized = build_mechanism_lp(
            4, 0.8, properties="all", output_alpha=output_alpha, vectorized=True
        )
        loop_based = build_mechanism_lp(
            4, 0.8, properties="all", output_alpha=output_alpha, vectorized=False
        )
        _assert_same_program(vectorized, loop_based)

    def test_solutions_identical_across_builders(self):
        vectorized = build_mechanism_lp(6, 0.85, properties="all", vectorized=True)
        loop_based = build_mechanism_lp(6, 0.85, properties="all", vectorized=False)
        solution_v = solve(vectorized.program)
        solution_l = solve(loop_based.program)
        assert np.array_equal(solution_v.values, solution_l.values)


class TestMatrixFromValues:
    def test_matches_explicit_double_loop(self):
        mechanism_lp = build_mechanism_lp(n=5, alpha=0.7, properties="WH+CM")
        solution = solve(mechanism_lp.program)
        fast = mechanism_lp.matrix_from_values(solution.values)
        size = mechanism_lp.n + 1
        slow = np.zeros((size, size))
        for i in range(size):
            for j in range(size):
                slow[i, j] = float(solution.values[mechanism_lp.variables[i][j].index])
        slow = np.clip(slow, 0.0, 1.0)
        slow /= slow.sum(axis=0, keepdims=True)
        assert np.array_equal(fast, slow)

    def test_zero_column_raises_instead_of_dividing(self):
        mechanism_lp = build_mechanism_lp(n=2, alpha=0.5)
        values = np.zeros(mechanism_lp.program.num_variables)
        values[mechanism_lp.variables[0][0].index] = 1.0  # only column 0 nonzero
        with pytest.raises(ValueError, match="sum to zero"):
            mechanism_lp.matrix_from_values(values)

    def test_ignores_trailing_auxiliary_variables(self):
        mechanism_lp = build_mechanism_lp(n=3, alpha=0.6, objective=Objective.minimax(p=1))
        solution = solve(mechanism_lp.program)
        matrix = mechanism_lp.matrix_from_values(solution.values)
        assert matrix.shape == (4, 4)
        assert np.allclose(matrix.sum(axis=0), 1.0)
