"""The documentation is part of the contract: snippets run, links resolve.

Every fenced ``python`` block in README.md and docs/*.md is executed, so a
quickstart that stops working fails the suite; every relative link is
checked against the tree via ``scripts/check_doc_links.py``.
"""

from __future__ import annotations

import importlib.util
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
DOC_FILES = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]

_PYTHON_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _python_blocks():
    for path in DOC_FILES:
        for index, match in enumerate(_PYTHON_BLOCK.finditer(path.read_text())):
            yield pytest.param(
                match.group(1), id=f"{path.relative_to(REPO_ROOT)}#{index}"
            )


class TestDocumentationExists:
    @pytest.mark.parametrize(
        "relative",
        ["README.md", "docs/architecture.md", "docs/mechanisms.md"],
    )
    def test_required_documents_exist(self, relative):
        path = REPO_ROOT / relative
        assert path.exists(), f"{relative} is missing"
        assert path.read_text().strip(), f"{relative} is empty"


class TestSnippetsExecute:
    @pytest.mark.parametrize("source", list(_python_blocks()))
    def test_python_block_runs(self, source):
        namespace: dict = {"__name__": "__doc_snippet__"}
        exec(compile(source, "<doc snippet>", "exec"), namespace)


class TestDocLinks:
    def test_all_relative_links_resolve(self):
        spec = importlib.util.spec_from_file_location(
            "check_doc_links", REPO_ROOT / "scripts" / "check_doc_links.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        broken = []
        for path in DOC_FILES:
            broken.extend(
                (str(path.relative_to(REPO_ROOT)), target, reason)
                for target, reason in module.check_file(path, REPO_ROOT)
            )
        assert broken == [], f"broken documentation links: {broken}"
