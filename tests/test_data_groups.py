"""Tests for group partitioning (repro.data.groups)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.groups import GroupedCounts, group_counts, partition_into_groups


class TestPartition:
    def test_consecutive_partition(self):
        bits = np.array([1, 0, 0, 1, 1, 1])
        groups = partition_into_groups(bits, 2)
        assert groups.shape == (3, 2)
        assert groups.sum(axis=1).tolist() == [1, 1, 2]

    def test_shuffle_is_reproducible_and_preserves_multiset(self, rng):
        bits = np.array([1] * 10 + [0] * 10)
        first = partition_into_groups(bits, 5, shuffle=True, rng=np.random.default_rng(3))
        second = partition_into_groups(bits, 5, shuffle=True, rng=np.random.default_rng(3))
        assert np.array_equal(first, second)
        assert first.sum() == 10

    def test_partial_group_dropped(self):
        groups = partition_into_groups(np.ones(7, dtype=int), 3)
        assert groups.shape == (2, 3)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            partition_into_groups(np.ones((2, 2), dtype=int), 2)
        with pytest.raises(ValueError):
            partition_into_groups(np.ones(4, dtype=int), 0)


class TestGroupedCounts:
    def test_group_counts_from_bits(self):
        workload = group_counts([1, 1, 0, 0, 1, 0], 3, label="income")
        assert isinstance(workload, GroupedCounts)
        assert workload.counts.tolist() == [2, 1]
        assert workload.group_size == 3
        assert workload.label == "income"
        assert workload.num_groups == 2

    def test_histogram_and_empirical_prior(self):
        workload = GroupedCounts(counts=np.array([0, 1, 1, 2]), group_size=2)
        histogram = workload.histogram()
        assert histogram.tolist() == [0.25, 0.5, 0.25]
        assert np.array_equal(histogram, workload.empirical_prior())

    def test_validation(self):
        with pytest.raises(ValueError):
            GroupedCounts(counts=np.array([[1]]), group_size=2)
        with pytest.raises(ValueError):
            GroupedCounts(counts=np.array([3]), group_size=2)
        with pytest.raises(ValueError):
            GroupedCounts(counts=np.array([1]), group_size=0)
