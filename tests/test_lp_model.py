"""Unit tests for the LP modelling layer (repro.lp.model)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lp.model import (
    Constraint,
    ConstraintSense,
    LinearProgram,
    ObjectiveSense,
    Variable,
    combination,
)


class TestConstraintSense:
    def test_coerce_from_strings(self):
        assert ConstraintSense.coerce("<=") is ConstraintSense.LE
        assert ConstraintSense.coerce(">=") is ConstraintSense.GE
        assert ConstraintSense.coerce("==") is ConstraintSense.EQ
        assert ConstraintSense.coerce("=") is ConstraintSense.EQ

    def test_coerce_passthrough(self):
        assert ConstraintSense.coerce(ConstraintSense.LE) is ConstraintSense.LE

    def test_coerce_rejects_unknown(self):
        with pytest.raises(ValueError):
            ConstraintSense.coerce("!=")


class TestObjectiveSense:
    def test_coerce_synonyms(self):
        assert ObjectiveSense.coerce("min") is ObjectiveSense.MIN
        assert ObjectiveSense.coerce("minimize") is ObjectiveSense.MIN
        assert ObjectiveSense.coerce("MAXIMISE") is ObjectiveSense.MAX

    def test_coerce_rejects_unknown(self):
        with pytest.raises(ValueError):
            ObjectiveSense.coerce("optimise")


class TestVariables:
    def test_add_variable_assigns_indices_in_order(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        y = lp.add_variable("y")
        assert (x.index, y.index) == (0, 1)
        assert lp.num_variables == 2

    def test_auto_generated_names_are_unique(self):
        lp = LinearProgram()
        created = lp.add_variables(5)
        assert len({var.name for var in created}) == 5

    def test_duplicate_name_rejected(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(ValueError):
            lp.add_variable("x")

    def test_inconsistent_bounds_rejected(self):
        lp = LinearProgram()
        with pytest.raises(ValueError):
            lp.add_variable("x", lower=2.0, upper=1.0)

    def test_variable_lookup_by_name(self):
        lp = LinearProgram()
        x = lp.add_variable("count")
        assert lp.variable_by_name("count") == x
        with pytest.raises(KeyError):
            lp.variable_by_name("missing")

    def test_variables_hash_by_index(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        y = lp.add_variable("y")
        assert len({x, y}) == 2
        assert x != y
        assert x == Variable(index=0, name="other-name")


class TestConstraints:
    def test_add_constraint_resolves_variable_keys(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        y = lp.add_variable("y")
        constraint = lp.add_constraint({x: 1.0, y: 2.0}, "<=", 4.0)
        assert constraint.coefficients == {0: 1.0, 1: 2.0}
        assert constraint.sense is ConstraintSense.LE
        assert constraint.rhs == 4.0

    def test_add_constraint_accepts_integer_indices(self):
        lp = LinearProgram()
        lp.add_variables(2)
        constraint = lp.add_constraint({0: 1.0, 1: -1.0}, ">=", 0.0)
        assert constraint.coefficients == {0: 1.0, 1: -1.0}

    def test_zero_coefficients_are_dropped(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        y = lp.add_variable("y")
        constraint = lp.add_constraint({x: 0.0, y: 3.0}, "==", 3.0)
        assert constraint.coefficients == {1: 3.0}

    def test_repeated_variables_sum_coefficients(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        constraint = lp.add_constraint(combination([(x, 1.0), (x, 2.0)]), "<=", 5.0)
        assert constraint.coefficients == {0: 3.0}

    def test_unknown_variable_index_rejected(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(IndexError):
            lp.add_constraint({5: 1.0}, "<=", 1.0)

    def test_constraint_violation_measure(self):
        constraint = Constraint({0: 1.0}, ConstraintSense.LE, 1.0)
        assert constraint.violation([0.5]) == 0.0
        assert constraint.violation([1.5]) == pytest.approx(0.5)
        eq = Constraint({0: 1.0}, ConstraintSense.EQ, 1.0)
        assert eq.violation([0.0]) == pytest.approx(1.0)


class TestObjective:
    def test_objective_vector_and_value(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        y = lp.add_variable("y")
        lp.set_objective({x: 2.0, y: -1.0}, sense="max", constant=3.0)
        assert np.allclose(lp.objective_vector(), [2.0, -1.0])
        assert lp.objective_value([1.0, 2.0]) == pytest.approx(2.0 - 2.0 + 3.0)

    def test_objective_unknown_variable_rejected(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(IndexError):
            lp.set_objective({3: 1.0})

    def test_max_objective_negated_in_standard_arrays(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        lp.set_objective({x: 5.0}, sense="max")
        arrays = lp.to_standard_arrays()
        assert np.allclose(arrays["c"], [-5.0])


class TestExportAndFeasibility:
    def _toy_program(self) -> LinearProgram:
        lp = LinearProgram("toy")
        x = lp.add_variable("x", lower=0.0)
        y = lp.add_variable("y", lower=0.0, upper=3.0)
        lp.add_constraint({x: 1.0, y: 1.0}, "<=", 4.0, name="cap")
        lp.add_constraint({x: 1.0, y: -1.0}, ">=", -1.0, name="diff")
        lp.add_constraint({x: 2.0, y: 1.0}, "==", 3.0, name="fix")
        lp.set_objective({x: 1.0, y: 1.0}, sense="min")
        return lp

    def test_standard_arrays_shapes(self):
        arrays = self._toy_program().to_standard_arrays()
        assert arrays["A_ub"].shape == (2, 2)
        assert arrays["A_eq"].shape == (1, 2)
        assert arrays["lower"].tolist() == [0.0, 0.0]
        assert arrays["upper"][1] == 3.0
        assert np.isinf(arrays["upper"][0])

    def test_ge_constraints_negated(self):
        arrays = self._toy_program().to_standard_arrays()
        # The GE row x - y >= -1 becomes -x + y <= 1.
        assert np.allclose(arrays["A_ub"][1], [-1.0, 1.0])
        assert arrays["b_ub"][1] == pytest.approx(1.0)

    def test_check_feasible_accepts_valid_point(self):
        lp = self._toy_program()
        assert lp.check_feasible([1.0, 1.0])

    def test_violated_constraints_reported_by_name(self):
        lp = self._toy_program()
        violated = lp.violated_constraints([5.0, 5.0])
        assert "cap" in violated
        assert "fix" in violated
        assert "bound:y:upper" in violated

    def test_violated_constraints_requires_full_assignment(self):
        lp = self._toy_program()
        with pytest.raises(ValueError):
            lp.violated_constraints([1.0])

    def test_summary_mentions_sizes(self):
        text = self._toy_program().summary()
        assert "2 variables" in text
        assert "1 equalities" in text
