"""Unit tests for the LP modelling layer (repro.lp.model)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lp.model import (
    SENSE_EQ,
    SENSE_GE,
    SENSE_LE,
    Constraint,
    ConstraintSense,
    LinearProgram,
    ObjectiveSense,
    Variable,
    combination,
)


class TestConstraintSense:
    def test_coerce_from_strings(self):
        assert ConstraintSense.coerce("<=") is ConstraintSense.LE
        assert ConstraintSense.coerce(">=") is ConstraintSense.GE
        assert ConstraintSense.coerce("==") is ConstraintSense.EQ
        assert ConstraintSense.coerce("=") is ConstraintSense.EQ

    def test_coerce_passthrough(self):
        assert ConstraintSense.coerce(ConstraintSense.LE) is ConstraintSense.LE

    def test_coerce_rejects_unknown(self):
        with pytest.raises(ValueError):
            ConstraintSense.coerce("!=")


class TestObjectiveSense:
    def test_coerce_synonyms(self):
        assert ObjectiveSense.coerce("min") is ObjectiveSense.MIN
        assert ObjectiveSense.coerce("minimize") is ObjectiveSense.MIN
        assert ObjectiveSense.coerce("MAXIMISE") is ObjectiveSense.MAX

    def test_coerce_rejects_unknown(self):
        with pytest.raises(ValueError):
            ObjectiveSense.coerce("optimise")


class TestVariables:
    def test_add_variable_assigns_indices_in_order(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        y = lp.add_variable("y")
        assert (x.index, y.index) == (0, 1)
        assert lp.num_variables == 2

    def test_auto_generated_names_are_unique(self):
        lp = LinearProgram()
        created = lp.add_variables(5)
        assert len({var.name for var in created}) == 5

    def test_add_variables_names_are_sequential(self):
        # Regression: the generated names used to skip every other index
        # (x0, x2, x4, …) because the count was re-read while it grew.
        lp = LinearProgram()
        created = lp.add_variables(5)
        assert [var.name for var in created] == ["x0", "x1", "x2", "x3", "x4"]

    def test_add_variables_numbering_continues_without_collision(self):
        lp = LinearProgram()
        lp.add_variables(3, prefix="y")
        more = lp.add_variables(2, prefix="y")
        assert [var.name for var in more] == ["y3", "y4"]

    def test_duplicate_name_rejected(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(ValueError):
            lp.add_variable("x")

    def test_inconsistent_bounds_rejected(self):
        lp = LinearProgram()
        with pytest.raises(ValueError):
            lp.add_variable("x", lower=2.0, upper=1.0)

    def test_variable_lookup_by_name(self):
        lp = LinearProgram()
        x = lp.add_variable("count")
        assert lp.variable_by_name("count") == x
        with pytest.raises(KeyError):
            lp.variable_by_name("missing")

    def test_variables_hash_by_index(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        y = lp.add_variable("y")
        assert len({x, y}) == 2
        assert x != y
        assert x == Variable(index=0, name="other-name")


class TestConstraints:
    def test_add_constraint_resolves_variable_keys(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        y = lp.add_variable("y")
        constraint = lp.add_constraint({x: 1.0, y: 2.0}, "<=", 4.0)
        assert constraint.coefficients == {0: 1.0, 1: 2.0}
        assert constraint.sense is ConstraintSense.LE
        assert constraint.rhs == 4.0

    def test_add_constraint_accepts_integer_indices(self):
        lp = LinearProgram()
        lp.add_variables(2)
        constraint = lp.add_constraint({0: 1.0, 1: -1.0}, ">=", 0.0)
        assert constraint.coefficients == {0: 1.0, 1: -1.0}

    def test_zero_coefficients_are_dropped(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        y = lp.add_variable("y")
        constraint = lp.add_constraint({x: 0.0, y: 3.0}, "==", 3.0)
        assert constraint.coefficients == {1: 3.0}

    def test_repeated_variables_sum_coefficients(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        constraint = lp.add_constraint(combination([(x, 1.0), (x, 2.0)]), "<=", 5.0)
        assert constraint.coefficients == {0: 3.0}

    def test_unknown_variable_index_rejected(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(IndexError):
            lp.add_constraint({5: 1.0}, "<=", 1.0)

    def test_constraint_violation_measure(self):
        constraint = Constraint({0: 1.0}, ConstraintSense.LE, 1.0)
        assert constraint.violation([0.5]) == 0.0
        assert constraint.violation([1.5]) == pytest.approx(0.5)
        eq = Constraint({0: 1.0}, ConstraintSense.EQ, 1.0)
        assert eq.violation([0.0]) == pytest.approx(1.0)


class TestObjective:
    def test_objective_vector_and_value(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        y = lp.add_variable("y")
        lp.set_objective({x: 2.0, y: -1.0}, sense="max", constant=3.0)
        assert np.allclose(lp.objective_vector(), [2.0, -1.0])
        assert lp.objective_value([1.0, 2.0]) == pytest.approx(2.0 - 2.0 + 3.0)

    def test_objective_unknown_variable_rejected(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(IndexError):
            lp.set_objective({3: 1.0})

    def test_max_objective_negated_in_standard_arrays(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        lp.set_objective({x: 5.0}, sense="max")
        arrays = lp.to_standard_arrays()
        assert np.allclose(arrays["c"], [-5.0])


class TestExportAndFeasibility:
    def _toy_program(self) -> LinearProgram:
        lp = LinearProgram("toy")
        x = lp.add_variable("x", lower=0.0)
        y = lp.add_variable("y", lower=0.0, upper=3.0)
        lp.add_constraint({x: 1.0, y: 1.0}, "<=", 4.0, name="cap")
        lp.add_constraint({x: 1.0, y: -1.0}, ">=", -1.0, name="diff")
        lp.add_constraint({x: 2.0, y: 1.0}, "==", 3.0, name="fix")
        lp.set_objective({x: 1.0, y: 1.0}, sense="min")
        return lp

    def test_standard_arrays_shapes(self):
        arrays = self._toy_program().to_standard_arrays()
        assert arrays["A_ub"].shape == (2, 2)
        assert arrays["A_eq"].shape == (1, 2)
        assert arrays["lower"].tolist() == [0.0, 0.0]
        assert arrays["upper"][1] == 3.0
        assert np.isinf(arrays["upper"][0])

    def test_ge_constraints_negated(self):
        arrays = self._toy_program().to_standard_arrays()
        # The GE row x - y >= -1 becomes -x + y <= 1.
        assert np.allclose(arrays["A_ub"][1], [-1.0, 1.0])
        assert arrays["b_ub"][1] == pytest.approx(1.0)

    def test_check_feasible_accepts_valid_point(self):
        lp = self._toy_program()
        assert lp.check_feasible([1.0, 1.0])

    def test_violated_constraints_reported_by_name(self):
        lp = self._toy_program()
        violated = lp.violated_constraints([5.0, 5.0])
        assert "cap" in violated
        assert "fix" in violated
        assert "bound:y:upper" in violated

    def test_violated_constraints_requires_full_assignment(self):
        lp = self._toy_program()
        with pytest.raises(ValueError):
            lp.violated_constraints([1.0])

    def test_summary_mentions_sizes(self):
        text = self._toy_program().summary()
        assert "2 variables" in text
        assert "1 equalities" in text


class TestTripletConstraints:
    def _block_program(self) -> LinearProgram:
        lp = LinearProgram("block")
        lp.add_variables(3)
        # Rows: x0 + 2 x1 <= 4;  x1 - x2 >= 0;  x0 + x2 == 3.
        lp.add_constraints_from_triplets(
            rows=[0, 0, 1, 1, 2, 2],
            cols=[0, 1, 1, 2, 0, 2],
            vals=[1.0, 2.0, 1.0, -1.0, 1.0, 1.0],
            senses=["<=", ">=", "=="],
            rhs=[4.0, 0.0, 3.0],
            names=["cap", "order", "fix"],
        )
        return lp

    def test_block_rows_count_and_names(self):
        lp = self._block_program()
        assert lp.num_constraints == 3
        assert [c.name for c in lp.constraints] == ["cap", "order", "fix"]
        assert lp.constraint_name(1) == "order"

    def test_block_materializes_like_scalar_constraints(self):
        lp = self._block_program()
        cap, order, fix = lp.constraints
        assert cap.coefficients == {0: 1.0, 1: 2.0}
        assert cap.sense is ConstraintSense.LE and cap.rhs == 4.0
        assert order.coefficients == {1: 1.0, 2: -1.0}
        assert order.sense is ConstraintSense.GE
        assert fix.sense is ConstraintSense.EQ and fix.rhs == 3.0

    def test_scalar_sense_broadcasts(self):
        lp = LinearProgram()
        lp.add_variables(2)
        block = lp.add_constraints_from_triplets(
            rows=[0, 1], cols=[0, 1], vals=[1.0, 1.0], senses=">=", rhs=[0.0, 0.0]
        )
        assert list(block.senses) == [SENSE_GE, SENSE_GE]

    def test_sense_code_array_accepted(self):
        lp = LinearProgram()
        lp.add_variables(2)
        block = lp.add_constraints_from_triplets(
            rows=[0, 1],
            cols=[0, 1],
            vals=[1.0, 1.0],
            senses=np.array([SENSE_LE, SENSE_EQ], dtype=np.int8),
            rhs=[1.0, 1.0],
        )
        senses = [c.sense for c in lp.constraints]
        assert senses == [ConstraintSense.LE, ConstraintSense.EQ]
        assert block.num_rows == 2

    def test_zero_coefficients_dropped_from_blocks(self):
        lp = LinearProgram()
        lp.add_variables(2)
        lp.add_constraints_from_triplets(
            rows=[0, 0], cols=[0, 1], vals=[1.0, 0.0], senses="<=", rhs=[2.0]
        )
        assert lp.num_nonzeros() == 1
        assert lp.constraints[0].coefficients == {0: 1.0}

    def test_duplicate_entries_summed(self):
        lp = LinearProgram()
        lp.add_variables(1)
        lp.add_constraints_from_triplets(
            rows=[0, 0], cols=[0, 0], vals=[1.0, 2.0], senses="<=", rhs=[5.0]
        )
        assert lp.constraints[0].coefficients == {0: 3.0}
        arrays = lp.to_standard_arrays()
        assert arrays["A_ub"][0, 0] == 3.0

    def test_callable_names_are_lazy(self):
        lp = LinearProgram()
        lp.add_variables(2)
        lp.add_constraints_from_triplets(
            rows=[0, 1],
            cols=[0, 1],
            vals=[1.0, 1.0],
            senses="<=",
            rhs=[1.0, 1.0],
            names=lambda k: f"lazy_{k}",
        )
        assert lp.constraint_name(0) == "lazy_0"
        assert [c.name for c in lp.constraints] == ["lazy_0", "lazy_1"]

    def test_default_names_continue_global_numbering(self):
        lp = LinearProgram()
        x = lp.add_variables(2)
        lp.add_constraint({x[0]: 1.0}, "<=", 1.0)
        lp.add_constraints_from_triplets(
            rows=[0, 1], cols=[0, 1], vals=[1.0, 1.0], senses="<=", rhs=[1.0, 1.0]
        )
        assert [c.name for c in lp.constraints] == ["c0", "c1", "c2"]

    def test_invalid_blocks_rejected(self):
        lp = LinearProgram()
        lp.add_variables(2)
        with pytest.raises(IndexError):
            lp.add_constraints_from_triplets([0], [7], [1.0], "<=", [1.0])
        with pytest.raises(IndexError):
            lp.add_constraints_from_triplets([3], [0], [1.0], "<=", [1.0])
        with pytest.raises(ValueError):
            lp.add_constraints_from_triplets([0], [0, 1], [1.0], "<=", [1.0])
        with pytest.raises(ValueError):
            lp.add_constraints_from_triplets([0], [0], [1.0], "<=", [1.0], names=["a", "b"])
        with pytest.raises(ValueError):
            lp.add_constraints_from_triplets([0], [0], [1.0], ["<=", ">="], [1.0])

    def test_violated_constraints_cover_blocks(self):
        lp = self._block_program()
        # x = (4, 0, 1): cap = 4 <= 4 ok; order = -1 < 0 violated; fix = 5 != 3.
        violated = lp.violated_constraints([4.0, 0.0, 1.0])
        assert violated == ["order", "fix"]

    def test_mixed_scalar_and_block_row_order(self):
        lp = LinearProgram()
        x = lp.add_variables(2)
        lp.add_constraint({x[0]: 1.0}, "<=", 1.0, name="first")
        lp.add_constraints_from_triplets(
            rows=[0, 1], cols=[0, 1], vals=[1.0, 1.0],
            senses=["<=", "=="], rhs=[2.0, 3.0], names=["second", "third"],
        )
        lp.add_constraint({x[1]: 1.0}, ">=", 0.5, name="fourth")
        arrays = lp.to_standard_arrays()
        # A_ub rows follow insertion order: first, second, then negated fourth.
        assert np.allclose(arrays["A_ub"], [[1.0, 0.0], [1.0, 0.0], [0.0, -1.0]])
        assert np.allclose(arrays["b_ub"], [1.0, 2.0, -0.5])
        assert np.allclose(arrays["A_eq"], [[0.0, 1.0]])


class TestSparseExport:
    def _random_program(self, rng: np.random.Generator) -> LinearProgram:
        lp = LinearProgram("random")
        num_vars = int(rng.integers(2, 9))
        for index in range(num_vars):
            lower = None if rng.random() < 0.2 else float(rng.normal())
            upper = None if rng.random() < 0.6 else (lower or 0.0) + float(rng.random()) + 1.0
            lp.add_variable(f"v{index}", lower=lower, upper=upper)
        senses = ["<=", ">=", "=="]
        for _ in range(int(rng.integers(1, 6))):
            if rng.random() < 0.5:
                coefficients = {
                    int(i): float(rng.normal())
                    for i in rng.choice(num_vars, size=int(rng.integers(1, num_vars + 1)), replace=False)
                }
                lp.add_constraint(coefficients, senses[int(rng.integers(3))], float(rng.normal()))
            else:
                num_rows = int(rng.integers(1, 5))
                nnz = int(rng.integers(1, 3 * num_rows + 1))
                lp.add_constraints_from_triplets(
                    rows=rng.integers(0, num_rows, size=nnz),
                    cols=rng.integers(0, num_vars, size=nnz),
                    vals=rng.normal(size=nnz),
                    senses=[senses[int(s)] for s in rng.integers(0, 3, size=num_rows)],
                    rhs=rng.normal(size=num_rows),
                )
        if rng.random() < 0.8:
            lp.set_objective(
                {int(i): float(rng.normal()) for i in range(num_vars)},
                sense="max" if rng.random() < 0.5 else "min",
            )
        return lp

    def test_sparse_and_dense_exports_agree_on_randomized_programs(self):
        """Property-style check: both exports describe the same standard form."""
        rng = np.random.default_rng(20180411)
        for _ in range(50):
            lp = self._random_program(rng)
            dense = lp.to_standard_arrays()
            sparse = lp.to_sparse_arrays()
            assert sparse["A_ub"].shape == dense["A_ub"].shape
            assert sparse["A_eq"].shape == dense["A_eq"].shape
            assert np.array_equal(sparse["A_ub"].toarray(), dense["A_ub"])
            assert np.array_equal(sparse["A_eq"].toarray(), dense["A_eq"])
            for key in ("c", "b_ub", "b_eq", "lower", "upper"):
                assert np.array_equal(sparse[key], dense[key]), key

    def test_sparse_export_empty_program(self):
        lp = LinearProgram()
        lp.add_variable("x")
        sparse = lp.to_sparse_arrays()
        assert sparse["A_ub"].shape == (0, 1)
        assert sparse["A_eq"].shape == (0, 1)

    def test_num_nonzeros_counts_both_representations(self):
        lp = LinearProgram()
        x = lp.add_variables(3)
        lp.add_constraint({x[0]: 1.0, x[1]: 2.0}, "<=", 1.0)
        lp.add_constraints_from_triplets(
            rows=[0, 0, 1], cols=[0, 1, 2], vals=[1.0, 1.0, 1.0], senses="==", rhs=[1.0, 2.0]
        )
        assert lp.num_nonzeros() == 5
