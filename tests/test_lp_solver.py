"""Tests for the LP solver dispatch layer (repro.lp.solver)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lp.model import LinearProgram
from repro.lp.solver import (
    BACKENDS,
    LPError,
    LPInfeasibleError,
    LPSolution,
    LPStatus,
    LPUnboundedError,
    available_backends,
    solve,
)


def _knapsack_lp() -> LinearProgram:
    """max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0 (optimum 36)."""
    lp = LinearProgram("knapsack")
    x = lp.add_variable("x")
    y = lp.add_variable("y")
    lp.add_constraint({x: 1.0}, "<=", 4.0)
    lp.add_constraint({y: 2.0}, "<=", 12.0)
    lp.add_constraint({x: 3.0, y: 2.0}, "<=", 18.0)
    lp.set_objective({x: 3.0, y: 5.0}, sense="max")
    return lp


class TestSolveDispatch:
    def test_available_backends(self):
        assert available_backends() == BACKENDS
        assert "scipy" in BACKENDS and "simplex" in BACKENDS

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_maximisation_reported_in_original_sense(self, backend):
        solution = solve(_knapsack_lp(), backend=backend)
        assert solution.status is LPStatus.OPTIMAL
        assert solution.objective == pytest.approx(36.0)
        assert solution.backend == backend

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_solution_lookup_by_name_and_variable(self, backend):
        lp = _knapsack_lp()
        solution = solve(lp, backend=backend)
        assert solution["x"] == pytest.approx(2.0, abs=1e-7)
        assert solution.value_of(lp.variable_by_name("y")) == pytest.approx(6.0, abs=1e-7)

    def test_objective_constant_included(self):
        lp = LinearProgram()
        x = lp.add_variable("x", upper=1.0)
        lp.set_objective({x: 1.0}, sense="max", constant=10.0)
        solution = solve(lp)
        assert solution.objective == pytest.approx(11.0)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            solve(_knapsack_lp(), backend="gurobi")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_infeasible_raises(self, backend):
        lp = LinearProgram()
        x = lp.add_variable("x")
        lp.add_constraint({x: 1.0}, "<=", 1.0)
        lp.add_constraint({x: 1.0}, ">=", 2.0)
        lp.set_objective({x: 1.0})
        with pytest.raises(LPInfeasibleError):
            solve(lp, backend=backend)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_unbounded_raises(self, backend):
        lp = LinearProgram()
        x = lp.add_variable("x")
        lp.set_objective({x: 1.0}, sense="max")
        with pytest.raises(LPUnboundedError):
            solve(lp, backend=backend)

    def test_backends_agree_on_equality_problem(self):
        lp = LinearProgram()
        x = lp.add_variable("x", upper=1.0)
        y = lp.add_variable("y", upper=1.0)
        lp.add_constraint({x: 1.0, y: 1.0}, "==", 1.2)
        lp.set_objective({x: 1.0, y: 3.0}, sense="min")
        values = [solve(lp, backend=backend).objective for backend in BACKENDS]
        assert values[0] == pytest.approx(values[1], abs=1e-8)

    def test_feasibility_check_runs(self):
        # The returned point of a healthy solve always passes the check.
        solution = solve(_knapsack_lp(), check=True)
        assert isinstance(solution, LPSolution)
        assert solution.values.shape == (2,)
        assert np.all(solution.values >= -1e-9)


class TestSparseSolvePath:
    def _program(self):
        from repro.core.constraints import build_mechanism_lp

        return build_mechanism_lp(n=6, alpha=0.8, properties="all").program

    def test_sparse_and_dense_exports_reach_identical_solutions(self):
        program = self._program()
        sparse_solution = solve(program, backend="scipy", sparse=True)
        dense_solution = solve(program, backend="scipy", sparse=False)
        assert np.array_equal(sparse_solution.values, dense_solution.values)
        assert sparse_solution.objective == pytest.approx(dense_solution.objective)

    def test_by_name_is_lazy_but_complete(self):
        program = self._program()
        solution = solve(program)
        assert solution._by_name_cache is None  # not materialised by solving
        assert solution["rho_0_0"] == pytest.approx(solution.values[0])
        assert len(solution.by_name) == program.num_variables

    def test_serialisation_round_trip_preserves_by_name(self):
        import json

        program = self._program()
        solution = solve(program)
        payload = json.loads(json.dumps(solution.to_dict()))
        restored = LPSolution.from_dict(payload)
        assert restored.by_name == pytest.approx(solution.by_name)


class TestWarmStartDispatch:
    """solve(warm_start=...): gating, fallback and basis serialisation."""

    def test_simplex_reports_a_basis_and_scipy_does_not(self):
        lp = _knapsack_lp()
        via_simplex = solve(lp, backend="simplex")
        assert via_simplex.basis is not None
        assert not via_simplex.warm_started
        via_scipy = solve(lp, backend="scipy")
        assert via_scipy.basis is None

    def test_warm_start_same_objective(self):
        lp = _knapsack_lp()
        seed = solve(lp, backend="simplex")
        warm = solve(lp, backend="simplex", warm_start=seed.basis)
        assert warm.warm_started
        assert warm.iterations == 0  # same program: the basis is optimal
        assert warm.objective == pytest.approx(seed.objective, abs=1e-12)

    def test_scipy_ignores_warm_start(self):
        lp = _knapsack_lp()
        seed = solve(lp, backend="simplex")
        result = solve(lp, backend="scipy", warm_start=seed.basis)
        assert result.status is LPStatus.OPTIMAL
        assert not result.warm_started

    def test_env_opt_out_forces_the_cold_path(self, monkeypatch):
        lp = _knapsack_lp()
        seed = solve(lp, backend="simplex")
        monkeypatch.setenv("REPRO_NO_WARMSTART", "1")
        cold = solve(lp, backend="simplex", warm_start=seed.basis)
        assert not cold.warm_started
        reference = solve(lp, backend="simplex")
        assert cold.iterations == reference.iterations
        np.testing.assert_array_equal(cold.values, reference.values)

    def test_garbage_warm_start_falls_back(self):
        lp = _knapsack_lp()
        reference = solve(lp, backend="simplex")
        result = solve(lp, backend="simplex", warm_start=(0, 0, 0))
        assert result.status is LPStatus.OPTIMAL
        assert not result.warm_started
        assert result.objective == pytest.approx(reference.objective, abs=1e-12)

    def test_solution_round_trips_with_basis(self):
        solution = solve(_knapsack_lp(), backend="simplex")
        payload = solution.to_dict()
        assert payload["basis"] == [int(i) for i in solution.basis]
        restored = LPSolution.from_dict(payload)
        assert restored.basis == solution.basis
        assert restored.warm_started == solution.warm_started
        # Legacy payloads without the new keys keep loading.
        del payload["basis"]
        legacy = LPSolution.from_dict(payload)
        assert legacy.basis is None
        assert legacy.warm_started is False
