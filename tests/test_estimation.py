"""Tests for aggregate estimation from released counts (repro.eval.estimation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import binomial_group_counts
from repro.eval.estimation import (
    debias_released_mean,
    estimate_true_histogram,
    estimate_true_mean,
    project_to_simplex,
    released_histogram,
)
from repro.mechanisms.fair import explicit_fair_mechanism
from repro.mechanisms.geometric import geometric_mechanism
from repro.mechanisms.randomized_response import binary_randomized_response
from repro.mechanisms.uniform import uniform_mechanism


class TestHelpers:
    def test_released_histogram_normalised(self):
        histogram = released_histogram([0, 1, 1, 3], n=3)
        assert histogram.tolist() == [0.25, 0.5, 0.0, 0.25]

    def test_released_histogram_validation(self):
        with pytest.raises(ValueError):
            released_histogram([], n=3)
        with pytest.raises(ValueError):
            released_histogram([4], n=3)

    def test_project_to_simplex_properties(self):
        projected = project_to_simplex([0.5, -0.2, 0.9])
        assert projected.sum() == pytest.approx(1.0)
        assert projected.min() >= 0.0
        # A vector already on the simplex is unchanged.
        assert np.allclose(project_to_simplex([0.2, 0.3, 0.5]), [0.2, 0.3, 0.5])

    def test_project_to_simplex_validation(self):
        with pytest.raises(ValueError):
            project_to_simplex([])


class TestHistogramEstimation:
    def test_recovers_binomial_shape_through_em(self, rng):
        n, alpha, p = 6, 0.6, 0.3
        mechanism = explicit_fair_mechanism(n, alpha)
        true_counts = binomial_group_counts(30_000, n, p, rng=rng)
        released = mechanism.apply(true_counts, rng=rng)
        estimate = estimate_true_histogram(mechanism, released)
        truth = np.bincount(true_counts, minlength=n + 1) / true_counts.size
        assert np.abs(estimate - truth).max() < 0.04

    def test_inverse_and_least_squares_agree_for_well_conditioned_mechanism(self, rng):
        n, alpha = 4, 0.5
        mechanism = geometric_mechanism(n, alpha)
        true_counts = binomial_group_counts(20_000, n, 0.5, rng=rng)
        released = mechanism.apply(true_counts, rng=rng)
        ls = estimate_true_histogram(mechanism, released, method="least_squares")
        inv = estimate_true_histogram(mechanism, released, method="inverse")
        assert np.abs(ls - inv).max() < 0.02

    def test_uniform_mechanism_is_singular_for_inverse(self, rng):
        mechanism = uniform_mechanism(4)
        released = mechanism.apply(np.zeros(100, dtype=int), rng=rng)
        with pytest.raises(ValueError):
            estimate_true_histogram(mechanism, released, method="inverse")

    def test_unknown_method_rejected(self, rng):
        mechanism = geometric_mechanism(3, 0.5)
        with pytest.raises(ValueError):
            estimate_true_histogram(mechanism, [0, 1], method="magic")

    def test_estimated_mean_close_to_truth(self, rng):
        n, alpha, p = 8, 0.7, 0.4
        mechanism = explicit_fair_mechanism(n, alpha)
        true_counts = binomial_group_counts(30_000, n, p, rng=rng)
        released = mechanism.apply(true_counts, rng=rng)
        estimate = estimate_true_mean(mechanism, released)
        assert estimate == pytest.approx(true_counts.mean(), abs=0.15)
        # The raw released mean is pulled towards n/2; the estimator fixes that.
        assert abs(estimate - true_counts.mean()) < abs(released.mean() - true_counts.mean())


class TestMeanDebiasing:
    def test_exact_for_randomized_response(self, rng):
        mechanism = binary_randomized_response(alpha=0.5)
        true_bits = (rng.random(50_000) < 0.3).astype(int)
        released = mechanism.apply(true_bits, rng=rng)
        estimate = debias_released_mean(mechanism, released)
        assert estimate == pytest.approx(0.3, abs=0.02)

    def test_reduces_bias_for_clamped_geometric(self, rng):
        n, alpha = 8, 0.8
        mechanism = geometric_mechanism(n, alpha)
        true_counts = binomial_group_counts(30_000, n, 0.25, rng=rng)
        released = mechanism.apply(true_counts, rng=rng)
        corrected = debias_released_mean(mechanism, released)
        assert abs(corrected - true_counts.mean()) < abs(released.mean() - true_counts.mean())

    def test_uninformative_mechanism_rejected(self, rng):
        mechanism = uniform_mechanism(4)
        released = mechanism.apply(np.zeros(50, dtype=int), rng=rng)
        with pytest.raises(ValueError):
            debias_released_mean(mechanism, released)

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            debias_released_mean(geometric_mechanism(3, 0.5), [])
