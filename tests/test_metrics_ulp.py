"""Bit-identity of the matrix metric kernels against the scalar wrappers.

numpy's pairwise summation walks memory, not logical rows: ``np.mean(m,
axis=-1)`` on a matrix whose last axis is not contiguous (an F-ordered
repetition matrix, exactly what a transposed sweep produces) can associate
the additions differently from a 1-D mean of each row and land ~1 ulp away.
The empirical harness computes every metric through the matrix kernels and
*documents* them as bit-identical to the scalar wrappers, so that promise
is pinned here for both memory orders.  ``test_f_order_naive_mean_differs``
keeps the motivating pitfall honest: if a future numpy reduces F-ordered
axes in row order, it skips rather than fails.
"""

import numpy as np
import pytest

from repro.eval.metrics import (
    ExceedsDistanceRate,
    _mean_last_axis,
    bias_from_diff,
    error_rate_from_diff,
    exceeds_rate_from_diff,
    exceeds_rate_profile,
    mae_from_diff,
    mean_absolute_error,
    mean_signed_error,
    root_mean_square_error,
    rmse_from_diff,
    signed_differences,
)

REPS, GROUPS = 6, 129  # smallest shape observed to trip pairwise reordering

KERNEL_WRAPPER_PAIRS = [
    (mae_from_diff, mean_absolute_error),
    (rmse_from_diff, root_mean_square_error),
    (bias_from_diff, mean_signed_error),
]


def _case(order):
    rng = np.random.default_rng(0)
    true = rng.integers(0, 8, size=GROUPS)
    released = true + rng.standard_normal((REPS, GROUPS))
    diff = signed_differences(true, released)
    if order == "F":
        diff = np.asfortranarray(diff)
        released = np.asfortranarray(released)
    return true, released, diff


def test_f_order_naive_mean_differs():
    """The pitfall is real on this numpy: naive axis-mean of an F-ordered
    matrix disagrees with row-by-row means.  (Skip, not fail, if numpy ever
    changes its reduction order — the kernels' bit-identity tests below are
    the actual contract.)"""
    _, _, diff = _case("F")
    naive = np.mean(diff, axis=-1)
    rowwise = np.array([np.mean(diff[r]) for r in range(REPS)])
    if np.array_equal(naive, rowwise):
        pytest.skip("this numpy reduces F-ordered axes in row order")
    assert np.max(np.abs(naive - rowwise)) < 1e-12  # ~1 ulp, not a real bug


@pytest.mark.parametrize("order", ["C", "F"])
@pytest.mark.parametrize("kernel,wrapper", KERNEL_WRAPPER_PAIRS)
def test_kernel_rows_bit_identical_to_scalar_wrapper(order, kernel, wrapper):
    true, released, diff = _case(order)
    matrix = kernel(diff)
    assert matrix.shape == (REPS,)
    for r in range(REPS):
        assert matrix[r] == wrapper(true, released[r]), (
            f"{kernel.__name__} row {r} deviates from {wrapper.__name__} "
            f"on {order}-ordered input"
        )


@pytest.mark.parametrize("order", ["C", "F"])
def test_rate_kernels_rows_match_scalar_wrappers(order):
    true, released, diff = _case(order)
    # Integer-valued releases so error/exceed rates are non-trivial.
    released = np.rint(released)
    diff = np.asarray(released - true, order=order)
    err = error_rate_from_diff(diff)
    exc = exceeds_rate_from_diff(diff, 1)
    metric = ExceedsDistanceRate(1)
    for r in range(REPS):
        assert err[r] == error_rate_from_diff(diff[r])
        assert exc[r] == metric(true, released[r])
    # The one-pass histogram profile promises the same identity.
    profile = exceeds_rate_profile(diff, [0, 1, 2])
    for k, d in enumerate([0, 1, 2]):
        assert np.array_equal(profile[k], exceeds_rate_from_diff(diff, d))


@pytest.mark.parametrize("order", ["C", "F"])
def test_mean_last_axis_matches_per_row_mean(order):
    rng = np.random.default_rng(0)
    values = np.asarray(rng.standard_normal((REPS, GROUPS)), order=order)
    result = _mean_last_axis(values)
    for r in range(REPS):
        assert result[r] == np.mean(values[r])


def test_mean_last_axis_handles_1d_and_sliced_inputs():
    rng = np.random.default_rng(1)
    row = rng.standard_normal(GROUPS)
    assert _mean_last_axis(row) == np.mean(row)
    # A strided view (every other column) is not last-axis contiguous either.
    matrix = rng.standard_normal((REPS, 2 * GROUPS))
    view = matrix[:, ::2]
    result = _mean_last_axis(view)
    for r in range(REPS):
        assert result[r] == np.mean(np.ascontiguousarray(view[r]))
