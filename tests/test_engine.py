"""Engine tests: compiled plans, streaming execution and cross-path parity.

The refactor's contract is that every release path — the serving session,
the histogram releaser, the empirical evaluator and the streaming CLI —
is a thin adapter over ``ReleasePlan``/``StreamExecutor``, and that routing
through the engine changed *nothing* observable: plan-routed outputs are
bit-identical to the pre-refactor paths (direct ``apply_batch`` /
``sample_tiled`` calls and the kept regression loops) on a shared seeded
stream, for all three representations including the ``α ∈ {0, 1}``
degenerations and the closed forms' analytic-bisection regime.  On top of
that, a ``PrivacyAccountant``-guarded path must refuse an over-budget
release *before* drawing a single uniform.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

import repro
from repro.core.mechanism import ClosedFormMechanism, DenseMechanism, Mechanism, SparseMechanism
from repro.engine import (
    ReleasePlan,
    StreamExecutor,
    charge_release,
    compile_plan,
    iter_count_chunks,
)
from repro.eval.empirical import _evaluate_loop, evaluate_mechanism
from repro.histogram.release import HistogramRelease
from repro.mechanisms.registry import create_mechanism
from repro.privacy import BudgetExceededError, PrivacyAccountant
from repro.serving import BatchReleaseSession, DesignCache, ReleaseRequest


def _dense_twin(mechanism: Mechanism) -> Mechanism:
    return DenseMechanism(mechanism.matrix.copy(), name=mechanism.name, alpha=mechanism.alpha)


def _sparse_twin(mechanism: Mechanism) -> SparseMechanism:
    return SparseMechanism(
        sparse.csc_matrix(mechanism.matrix), name=mechanism.name, alpha=mechanism.alpha
    )


def _three_representations(n: int, alpha: float):
    """Closed-form GM plus dense and sparse twins with bit-identical columns."""
    closed = create_mechanism("GM", n=n, alpha=alpha)
    return [closed, _dense_twin(closed), _sparse_twin(closed)]


class TestReleasePlan:
    def test_compile_matches_selector(self):
        plan = compile_plan(8, 0.9, properties="F")
        mechanism, decision = repro.choose_mechanism(8, 0.9, properties="F")
        assert plan.mechanism.name == mechanism.name
        assert plan.branch == decision.branch == "EM"
        assert plan.alpha_cost == pytest.approx(0.9)
        assert plan.prepared
        assert plan.n == 8

    def test_compile_through_cache_sets_key_and_hits(self):
        cache = DesignCache(capacity=8)
        first = compile_plan(6, 0.9, properties="WH+CM", cache=cache)
        assert first.key is not None
        before = cache.stats().hits
        second = compile_plan(6, 0.9, properties="WH+CM", cache=cache)
        assert cache.stats().hits == before + 1
        assert second.key == first.key

    def test_from_mechanism_defaults_alpha_cost(self):
        gm = create_mechanism("GM", n=6, alpha=0.8)
        plan = ReleasePlan.from_mechanism(gm)
        assert plan.alpha_cost == pytest.approx(0.8)
        with pytest.raises(ValueError):
            ReleasePlan.from_mechanism(gm, alpha_cost=1.5)

    @pytest.mark.parametrize("alpha", [0.0, 0.5, 1.0])
    def test_execute_bit_identical_to_sample_batch(self, alpha):
        counts = np.random.default_rng(0).integers(0, 13, size=500)
        for mechanism in _three_representations(12, alpha):
            plan = ReleasePlan.from_mechanism(mechanism)
            released = plan.execute(counts, rng=np.random.default_rng(42))
            reference = mechanism.sample_batch(counts, rng=np.random.default_rng(42))
            assert np.array_equal(released, reference), mechanism.representation

    def test_execute_tiled_bit_identical_to_sample_tiled(self):
        counts = np.arange(9)
        for mechanism in _three_representations(8, 0.9):
            plan = ReleasePlan.from_mechanism(mechanism)
            released = plan.execute_tiled(counts, 7, rng=np.random.default_rng(3))
            reference = mechanism.sample_tiled(counts, 7, rng=np.random.default_rng(3))
            assert np.array_equal(released, reference), mechanism.representation

    def test_postprocess_hook_applied(self):
        plan = compile_plan(8, 0.9, postprocess=lambda released: released * 10)
        released = plan.execute(np.array([1, 2, 3]), rng=np.random.default_rng(0))
        assert np.all(released % 10 == 0)

    def test_counters_and_describe(self):
        plan = compile_plan(8, 0.9)
        plan.execute(np.array([1, 2]), rng=np.random.default_rng(0))
        plan.execute_tiled(np.array([1, 2]), 3, rng=np.random.default_rng(0))
        stats = plan.stats()
        assert stats["executions"] == 2
        assert stats["records_released"] == 2 + 6
        assert "GM" in plan.describe()

    def test_estimation_hooks(self):
        plan = compile_plan(8, 0.9)
        released = plan.execute(np.full(4000, 4), rng=np.random.default_rng(1))
        histogram = plan.estimate_true_histogram(released)
        assert histogram.shape == (9,)
        assert histogram.sum() == pytest.approx(1.0)
        assert plan.debias_released_mean(released) == pytest.approx(4.0, abs=0.5)

    def test_compilations_counter(self):
        before = ReleasePlan.compilations
        compile_plan(4, 0.9)
        assert ReleasePlan.compilations == before + 1


class TestChargeRelease:
    def test_none_accountant_is_free(self):
        charge_release(None, 0.5)  # no error, nothing to record

    def test_refuses_non_positive_alpha(self):
        accountant = PrivacyAccountant(alpha_target=0.5)
        with pytest.raises(BudgetExceededError):
            charge_release(accountant, 0.0)
        assert accountant.spent_alpha() == 1.0

    def test_composed_multi_release_charge(self):
        accountant = PrivacyAccountant(alpha_target=0.5)
        charge_release(accountant, 0.9, releases=3)
        assert accountant.spent_alpha() == pytest.approx(0.9**3)
        with pytest.raises(BudgetExceededError):
            charge_release(accountant, 0.9, releases=10)
        # A refused charge records nothing.
        assert accountant.spent_alpha() == pytest.approx(0.9**3)


class TestIterCountChunks:
    def test_ndarray_sliced_without_copy(self):
        counts = np.arange(10)
        chunks = list(iter_count_chunks(counts, 4))
        assert [c.tolist() for c in chunks] == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]

    def test_mixed_scalar_and_batch_sources_rechunked(self):
        def source():
            yield 1
            yield np.array([2, 3, 4])
            yield [5, 6]
            yield 7

        chunks = list(iter_count_chunks(source(), 3))
        assert [c.tolist() for c in chunks] == [[1, 2, 3], [4, 5, 6], [7]]

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            list(iter_count_chunks(np.arange(3), 0))


class TestStreamExecutor:
    @pytest.mark.parametrize("chunk_size", [1, 7, 100, 10_000])
    def test_chunked_serial_bit_identical_to_one_shot(self, chunk_size):
        counts = np.random.default_rng(1).integers(0, 17, size=300)
        for mechanism in _three_representations(16, 0.9):
            plan = ReleasePlan.from_mechanism(mechanism)
            executor = StreamExecutor(plan, chunk_size=chunk_size)
            streamed = executor.run(counts, rng=np.random.default_rng(5))
            reference = mechanism.sample_batch(counts, rng=np.random.default_rng(5))
            assert np.array_equal(streamed, reference), (
                mechanism.representation,
                chunk_size,
            )

    def test_bisection_regime_chunked_matches_one_shot(self):
        # n above ClosedFormMechanism.EXACT_SAMPLING_LIMIT: the closed form
        # samples by analytic inverse-CDF bisection; chunking must not
        # change the stream.
        n = 2 * ClosedFormMechanism.EXACT_SAMPLING_LIMIT
        gm = create_mechanism("GM", n=n, alpha=0.9)
        counts = np.random.default_rng(2).integers(0, n + 1, size=1000)
        executor = StreamExecutor(ReleasePlan.from_mechanism(gm), chunk_size=128)
        streamed = executor.run(counts, rng=np.random.default_rng(9))
        reference = gm.sample_batch(counts, rng=np.random.default_rng(9))
        assert np.array_equal(streamed, reference)

    def test_generator_source_matches_array_source(self):
        counts = np.random.default_rng(3).integers(0, 9, size=257)
        plan = compile_plan(8, 0.9)
        from_array = StreamExecutor(plan, chunk_size=50).run(
            counts, rng=np.random.default_rng(1)
        )
        from_generator = StreamExecutor(plan, chunk_size=50).run(
            (int(c) for c in counts), rng=np.random.default_rng(1)
        )
        assert np.array_equal(from_array, from_generator)

    def test_empty_stream(self):
        executor = StreamExecutor(compile_plan(8, 0.9), chunk_size=10)
        released = executor.run(np.empty(0, dtype=int), rng=np.random.default_rng(0))
        assert released.size == 0
        assert executor.stats.chunks == 0

    def test_seeded_serial_equals_seeded_parallel(self):
        counts = np.random.default_rng(4).integers(0, 33, size=600)
        plan = compile_plan(32, 0.9)
        serial = StreamExecutor(plan, chunk_size=100).run_seeded(counts, seed=11)
        parallel = StreamExecutor(plan, chunk_size=100, max_workers=2).run_seeded(
            counts, seed=11
        )
        assert np.array_equal(serial, parallel)

    def test_shared_stream_discipline_rejects_fan_out(self):
        executor = StreamExecutor(compile_plan(8, 0.9), max_workers=2)
        with pytest.raises(ValueError):
            list(executor.stream(np.arange(3), rng=np.random.default_rng(0)))

    def test_constructor_validation(self):
        plan = compile_plan(8, 0.9)
        with pytest.raises(ValueError):
            StreamExecutor(plan, chunk_size=0)
        with pytest.raises(ValueError):
            StreamExecutor(plan, max_workers=0)

    def test_over_budget_chunk_refused_before_sampling(self):
        plan = compile_plan(16, 0.9)
        accountant = PrivacyAccountant(alpha_target=0.9**2)  # budget: 2 chunks
        executor = StreamExecutor(plan, chunk_size=100, accountant=accountant)
        counts = np.random.default_rng(5).integers(0, 17, size=500)
        rng = np.random.default_rng(21)
        served = []
        with pytest.raises(BudgetExceededError):
            for chunk in executor.stream(counts, rng=rng):
                served.append(chunk)
        assert len(served) == 2
        assert executor.stats.records == 200
        # The refused third chunk consumed nothing: the generator sits
        # exactly where a 200-draw run would leave it.
        probe = np.random.default_rng(21)
        probe.random(200)
        assert rng.random() == probe.random()
        assert "alpha_spent" in executor.describe()

    def test_invalid_counts_rejected_before_charging(self):
        # An out-of-range chunk must raise ValueError without burning
        # budget: validation precedes charging precedes sampling.
        accountant = PrivacyAccountant(alpha_target=0.5)
        executor = StreamExecutor(
            compile_plan(8, 0.9), chunk_size=4, accountant=accountant
        )
        with pytest.raises(ValueError):
            executor.run(np.array([1, 2, 99]), rng=np.random.default_rng(0))
        assert accountant.spent_alpha() == 1.0
        with pytest.raises(ValueError):
            list(executor.stream_seeded(np.array([-1]), seed=0))
        assert accountant.spent_alpha() == 1.0

    def test_parallel_refusal_still_delivers_charged_chunks(self):
        # In the fan-out discipline, chunks already charged and submitted
        # when the budget runs out must still reach the caller — the budget
        # was spent on them.
        plan = compile_plan(16, 0.9)
        accountant = PrivacyAccountant(alpha_target=0.9**3)  # budget: 3 chunks
        executor = StreamExecutor(
            plan, chunk_size=50, accountant=accountant, max_workers=2
        )
        counts = np.random.default_rng(12).integers(0, 17, size=250)  # 5 chunks
        served = []
        with pytest.raises(BudgetExceededError):
            for chunk in executor.stream_seeded(counts, seed=19):
                served.append(chunk)
        assert len(served) == 3
        assert executor.stats.records == 150
        assert accountant.spent_alpha() == pytest.approx(0.9**3)
        # The delivered chunks match the serial seeded run of the same prefix.
        reference = StreamExecutor(plan, chunk_size=50).run_seeded(
            counts[:150], seed=19
        )
        assert np.array_equal(np.concatenate(served), reference)

    def test_alpha_zero_plan_unmetered_ok_metered_refused(self):
        gm = create_mechanism("GM", n=8, alpha=0.0)
        plan = ReleasePlan.from_mechanism(gm)
        assert plan.alpha_cost == 0.0
        released = StreamExecutor(plan, chunk_size=4).run(
            np.arange(9), rng=np.random.default_rng(0)
        )
        assert released.shape == (9,)
        guarded = StreamExecutor(
            plan, chunk_size=4, accountant=PrivacyAccountant(alpha_target=0.5)
        )
        with pytest.raises(BudgetExceededError):
            guarded.run(np.arange(9), rng=np.random.default_rng(0))


class TestSessionParity:
    """The serving session routed through plans matches its pre-refactor paths."""

    def test_release_counts_matches_direct_apply_batch(self):
        counts = np.random.default_rng(6).integers(0, 9, size=400)
        for properties in ("", "F", "WH+CM"):
            session = BatchReleaseSession(rng=np.random.default_rng(33))
            released = session.release_counts(counts, n=8, alpha=0.9, properties=properties)
            # Pre-refactor path: resolve the design, then one apply_batch on
            # an identically seeded generator.
            mechanism, _ = repro.choose_mechanism(8, 0.9, properties=properties)
            reference = mechanism.apply_batch(counts, rng=np.random.default_rng(33))
            assert np.array_equal(released, reference), properties

    def test_mixed_release_matches_pre_refactor_bucketing(self):
        rng = np.random.default_rng(7)
        requests = []
        designs = [(8, 0.9, ""), (8, 0.9, "F"), (6, 0.8, "")]
        for index in range(120):
            n, alpha, properties = designs[int(rng.integers(0, len(designs)))]
            requests.append(
                ReleaseRequest(
                    group=f"g{index}",
                    count=int(rng.integers(0, n + 1)),
                    n=n,
                    alpha=alpha,
                    properties=properties,
                )
            )
        session = BatchReleaseSession(rng=np.random.default_rng(55))
        results = session.release(requests)
        assert [r.group for r in results] == [r.group for r in requests]

        # Pre-refactor reference: bucket by design key in first-appearance
        # order, one apply_batch per bucket on a shared generator.
        reference_rng = np.random.default_rng(55)
        buckets = {}
        for index, request in enumerate(requests):
            key = repro.design_key(request.n, request.alpha, request.properties, None, "scipy")
            buckets.setdefault(key, []).append(index)
        reference = [None] * len(requests)
        for key, indices in buckets.items():
            first = requests[indices[0]]
            mechanism, _ = repro.choose_mechanism(
                first.n, first.alpha, properties=first.properties
            )
            values = mechanism.apply_batch(
                np.asarray([requests[i].count for i in indices], dtype=int),
                rng=reference_rng,
            )
            for i, value in zip(indices, values):
                reference[i] = int(value)
        assert [r.released for r in results] == reference

    def test_budget_refusal_is_all_or_nothing_before_sampling(self):
        session = BatchReleaseSession(
            rng=np.random.default_rng(1), budget_alpha=0.9**2
        )
        counts = np.arange(9)
        session.release_counts(counts, n=8, alpha=0.9)
        session.release_counts(counts, n=8, alpha=0.9)
        with pytest.raises(BudgetExceededError):
            session.release_counts(counts, n=8, alpha=0.9)
        # Two successful batches of 9 records each; the refused one drew
        # nothing (the generator sits at 18 consumed uniforms).
        probe = np.random.default_rng(1)
        probe.random(18)
        assert session.rng.random() == probe.random()
        assert session.stats.records == 18
        assert session.stats.budget_refusals == 1
        assert session.stats.alpha_spent == pytest.approx(0.9**2)
        assert session.stats.alpha_remaining == pytest.approx(1.0)
        assert "alpha_spent" in session.describe()
        assert "budget_refusals=1" in session.describe()

    def test_mixed_release_refusal_spans_all_buckets(self):
        # A mixed batch whose *composed* cost exceeds the budget is refused
        # whole, even though any single bucket would fit.
        session = BatchReleaseSession(rng=np.random.default_rng(2), budget_alpha=0.85)
        requests = [
            ReleaseRequest(group="a", count=1, n=8, alpha=0.9),
            ReleaseRequest(group="b", count=2, n=8, alpha=0.9, properties="F"),
        ]
        with pytest.raises(BudgetExceededError):
            session.release(requests)
        probe = np.random.default_rng(2)
        assert session.rng.random() == probe.random()  # nothing drawn
        assert session.stats.records == 0

    def test_invalid_counts_rejected_before_charging(self):
        session = BatchReleaseSession(rng=np.random.default_rng(3), budget_alpha=0.5)
        with pytest.raises(ValueError):
            session.release_counts(np.array([1, 99]), n=8, alpha=0.9)
        assert session.accountant.spent_alpha() == 1.0

    def test_accountant_and_budget_alpha_mutually_exclusive(self):
        with pytest.raises(ValueError):
            BatchReleaseSession(
                accountant=PrivacyAccountant(alpha_target=0.5), budget_alpha=0.5
            )

    def test_plan_for_reuses_compiled_plan(self):
        session = BatchReleaseSession()
        first = session.plan_for(8, 0.9, properties="F")
        second = session.plan_for(8, 0.9, properties="F")
        assert first is second
        assert session.mechanism_for(8, 0.9, properties="F") is first.mechanism


class TestHistogramParity:
    def test_release_matches_direct_apply_batch(self):
        release = HistogramRelease(repro.geometric_mechanism, alpha=0.8)
        counts = [3, 0, 7, 2, 5]
        histogram = release.release(counts, rng=np.random.default_rng(17))
        reference_mechanism = repro.geometric_mechanism(7, alpha=0.8)
        reference = reference_mechanism.apply_batch(
            np.asarray(counts), rng=np.random.default_rng(17)
        )
        assert np.array_equal(histogram.released_counts, reference)

    def test_release_many_matches_tiled_and_loop(self):
        counts = [3, 0, 7, 2, 5]
        release = HistogramRelease(
            repro.geometric_mechanism, alpha=0.8, rng=np.random.default_rng(23)
        )
        many = release.release_many(counts, repetitions=6)
        reference = repro.geometric_mechanism(7, alpha=0.8).sample_tiled(
            np.asarray(counts), 6, rng=np.random.default_rng(23)
        )
        assert np.array_equal(many, reference)
        loop_release = HistogramRelease(
            repro.geometric_mechanism, alpha=0.8, rng=np.random.default_rng(23)
        )
        loop = loop_release._release_many_loop(counts, repetitions=6)
        assert np.array_equal(many, loop)

    def test_budget_guarded_release_many_refused_before_sampling(self):
        accountant = PrivacyAccountant(alpha_target=0.5)
        release = HistogramRelease(
            repro.geometric_mechanism,
            alpha=0.8,
            rng=np.random.default_rng(29),
            accountant=accountant,
        )
        # 0.8^4 = 0.4096 < 0.5: four sequential releases exceed the budget.
        with pytest.raises(BudgetExceededError):
            release.release_many([1, 2, 3], repetitions=4)
        assert accountant.spent_alpha() == 1.0  # nothing recorded
        probe = np.random.default_rng(29)
        assert release.rng.random() == probe.random()  # nothing drawn
        # Three fit (0.8^3 = 0.512 >= 0.5).
        assert release.release_many([1, 2, 3], repetitions=3).shape == (3, 3)

    def test_swap_neighbouring_charges_squared_alpha(self):
        accountant = PrivacyAccountant(alpha_target=0.5)
        release = HistogramRelease(
            repro.geometric_mechanism,
            alpha=0.8,
            neighbouring="swap",
            accountant=accountant,
        )
        release.release([1, 2], rng=np.random.default_rng(0))
        assert accountant.spent_alpha() == pytest.approx(0.8**2)


class TestEvaluateParity:
    @pytest.mark.parametrize("alpha", [0.0, 0.9, 1.0])
    def test_plan_routed_evaluation_bit_identical(self, alpha):
        counts = np.random.default_rng(8).integers(0, 13, size=150)
        for mechanism in _three_representations(12, alpha):
            via_mechanism = evaluate_mechanism(
                mechanism, counts, group_size=12, repetitions=5, seed=77
            )
            via_plan = evaluate_mechanism(
                ReleasePlan.from_mechanism(mechanism),
                counts,
                group_size=12,
                repetitions=5,
                seed=77,
            )
            via_loop = _evaluate_loop(
                mechanism, counts, group_size=12, repetitions=5, seed=77
            )
            for metric in via_loop.metrics():
                loop_values = via_loop.per_repetition[metric]
                assert np.array_equal(via_mechanism.per_repetition[metric], loop_values)
                assert np.array_equal(via_plan.per_repetition[metric], loop_values)

    def test_plan_evaluate_convenience(self):
        plan = compile_plan(8, 0.9)
        counts = np.random.default_rng(9).integers(0, 9, size=60)
        direct = evaluate_mechanism(plan.mechanism, counts, group_size=8, repetitions=3, seed=5)
        via_plan = plan.evaluate(counts, group_size=8, repetitions=3, seed=5)
        for metric in direct.metrics():
            assert np.array_equal(
                via_plan.per_repetition[metric], direct.per_repetition[metric]
            )


class TestServeStreamCLI:
    def test_stream_matches_serve_batch(self, tmp_path, capsys):
        from repro.cli import main

        counts_path = tmp_path / "counts.txt"
        values = np.random.default_rng(10).integers(0, 33, size=257)
        counts_path.write_text("\n".join(str(int(v)) for v in values) + "\n")

        exit_code = main(
            ["serve-stream", "--n", "32", "--alpha", "0.9",
             "--counts-file", str(counts_path), "--chunk-size", "40", "--seed", "123"]
        )
        assert exit_code == 0
        streamed = [int(line) for line in capsys.readouterr().out.split()]

        exit_code = main(
            ["serve-batch", "--n", "32", "--alpha", "0.9",
             "--counts-file", str(counts_path), "--seed", "123"]
        )
        assert exit_code == 0
        batched = [int(line) for line in capsys.readouterr().out.split()]
        # The serial shared-stream discipline is bit-identical to the
        # one-shot serving path for the same seed, whatever the chunking.
        assert streamed == batched

    def test_stream_stats_and_output_file(self, tmp_path, capsys):
        from repro.cli import main

        counts_path = tmp_path / "counts.txt"
        counts_path.write_text("1\n2\n3\n")
        out_path = tmp_path / "released.txt"
        exit_code = main(
            ["serve-stream", "--n", "8", "--alpha", "0.9",
             "--counts-file", str(counts_path), "--output", str(out_path),
             "--seed", "1", "--stats"]
        )
        assert exit_code == 0
        captured = capsys.readouterr()
        # Stats live on stderr so they never corrupt a piped count stream.
        assert "serve-stream:" in captured.err
        assert "chunks=1" in captured.err
        assert "records=3" in captured.err
        assert "serve-stream:" not in captured.out
        assert len(out_path.read_text().split()) == 3

    def test_stream_budget_refusal_partial_output(self, tmp_path, capsys):
        from repro.cli import main

        counts_path = tmp_path / "counts.txt"
        counts_path.write_text("\n".join("1" for _ in range(30)) + "\n")
        exit_code = main(
            ["serve-stream", "--n", "8", "--alpha", "0.9",
             "--counts-file", str(counts_path), "--chunk-size", "10",
             "--seed", "1", "--budget-alpha", str(0.9**2)]
        )
        assert exit_code == 1
        captured = capsys.readouterr()
        assert len(captured.out.split()) == 20  # two chunks served, third refused
        assert "privacy budget exhausted" in captured.err

    def test_stream_budget_refusal_with_output_file_reports_partial(self, tmp_path, capsys):
        from repro.cli import main

        counts_path = tmp_path / "counts.txt"
        counts_path.write_text("\n".join("1" for _ in range(30)) + "\n")
        out_path = tmp_path / "released.txt"
        exit_code = main(
            ["serve-stream", "--n", "8", "--alpha", "0.9",
             "--counts-file", str(counts_path), "--chunk-size", "10",
             "--seed", "1", "--budget-alpha", str(0.9**2),
             "--output", str(out_path)]
        )
        assert exit_code == 1
        captured = capsys.readouterr()
        # An aborted run must not claim success on stdout; the partial
        # nature is reported on stderr instead.
        assert "wrote" not in captured.out
        assert "PARTIAL" in captured.err
        assert len(out_path.read_text().split()) == 20

    def test_stream_worker_counts_agree(self, tmp_path, capsys):
        from repro.cli import main

        counts_path = tmp_path / "counts.txt"
        values = np.random.default_rng(11).integers(0, 17, size=90)
        counts_path.write_text("\n".join(str(int(v)) for v in values) + "\n")
        outputs = []
        for workers in ("1", "2"):
            exit_code = main(
                ["serve-stream", "--n", "16", "--alpha", "0.9",
                 "--counts-file", str(counts_path), "--chunk-size", "25",
                 "--seed", "7", "--max-workers", workers]
            )
            assert exit_code == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]

    def test_serve_batch_budget_refusal(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(
                ["serve-batch", "--n", "8", "--alpha", "0.9",
                 "--counts", "1", "2", "--seed", "1", "--budget-alpha", "0.95"]
            )
