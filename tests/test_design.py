"""Tests for LP-based mechanism design (repro.core.design).

These cover the paper's structural theorems: the unconstrained L0 optimum is
GM (Theorem 3), the fair optimum matches EM's cost (Theorem 4 / Lemma 4),
constrained optima always satisfy their constraints, and the two LP backends
agree.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.design import design_mechanism, design_mechanisms, optimal_objective_value
from repro.core.losses import Objective, l0_score, l1_score
from repro.core.properties import (
    ALL_PROPERTIES,
    check_all_properties,
    parse_properties,
    satisfies_all,
)
from repro.core.theory import em_l0_score, gm_l0_score
from repro.mechanisms.geometric import geometric_mechanism


class TestUnconstrainedDesign:
    @pytest.mark.parametrize("n,alpha", [(3, 0.5), (5, 0.62), (7, 0.62), (4, 0.9)])
    def test_theorem3_unconstrained_l0_optimum_is_gm(self, n, alpha):
        mechanism = design_mechanism(n=n, alpha=alpha, properties=())
        assert l0_score(mechanism) == pytest.approx(gm_l0_score(alpha), abs=1e-7)
        # The optimum is unique (Theorem 3), so the matrix itself matches GM.
        assert np.allclose(mechanism.matrix, geometric_mechanism(n, alpha).matrix, atol=1e-6)

    def test_unconstrained_l1_beats_constrained_l1(self):
        unconstrained = design_mechanism(5, 0.62, properties=(), objective=Objective.l1())
        constrained = design_mechanism(5, 0.62, properties="all", objective=Objective.l1())
        assert l1_score(unconstrained) <= l1_score(constrained) + 1e-9

    def test_metadata_records_provenance(self):
        mechanism = design_mechanism(3, 0.7, properties="WH")
        assert mechanism.metadata["source"] == "lp"
        assert mechanism.metadata["properties"] == ["WH"]
        assert mechanism.metadata["objective"] == "L0 (sum)"
        assert mechanism.metadata["lp_variables"] == 16


class TestConstrainedDesign:
    def test_all_properties_yields_em_cost(self):
        for n, alpha in [(4, 0.9), (7, 0.62), (6, 0.8)]:
            mechanism = design_mechanism(n=n, alpha=alpha, properties="all")
            assert l0_score(mechanism) == pytest.approx(em_l0_score(n, alpha), abs=1e-7)
            assert all(check_all_properties(mechanism, tolerance=1e-6).values())

    def test_fairness_alone_yields_em_cost(self):
        # Theorem 4: the fair optimum achieves the Lemma-4 bound, i.e. EM's cost.
        mechanism = design_mechanism(n=6, alpha=0.85, properties="F")
        assert l0_score(mechanism) == pytest.approx(em_l0_score(6, 0.85), abs=1e-7)

    @pytest.mark.parametrize("properties", ["WH", "WH+CM", "F+S", "RM+CH", "all"])
    def test_requested_properties_always_satisfied(self, properties):
        mechanism = design_mechanism(n=5, alpha=0.88, properties=properties)
        assert satisfies_all(mechanism, parse_properties(properties), tolerance=1e-6)
        assert mechanism.max_alpha() >= 0.88 - 1e-6

    def test_costs_are_monotone_in_constraint_set(self):
        # Adding constraints can only increase the optimal objective value.
        base = optimal_objective_value(5, 0.9, properties="WH")
        more = optimal_objective_value(5, 0.9, properties="WH+CM")
        most = optimal_objective_value(5, 0.9, properties="all")
        assert base <= more + 1e-9 <= most + 2e-9

    def test_constrained_l2_is_not_degenerate(self):
        # Figure 1 vs Figure 2: the unconstrained L2 optimum ignores its input;
        # the constrained one must not (its diagonal is strictly above zero).
        constrained = design_mechanism(7, 0.62, properties="all", objective=Objective.l2())
        assert constrained.diagonal.min() > 0.01


class TestBackendsAgree:
    @pytest.mark.parametrize("properties", [(), "WH", "F", "WH+CM"])
    def test_simplex_and_scipy_same_objective(self, properties):
        scipy_value = optimal_objective_value(4, 0.75, properties=properties, backend="scipy")
        simplex_value = optimal_objective_value(4, 0.75, properties=properties, backend="simplex")
        assert scipy_value == pytest.approx(simplex_value, abs=1e-7)

    def test_simplex_backend_produces_valid_mechanism(self):
        mechanism = design_mechanism(3, 0.9, properties="all", backend="simplex")
        assert all(check_all_properties(mechanism, tolerance=1e-6).values())
        assert mechanism.max_alpha() >= 0.9 - 1e-6


class TestWeightedAndMinimaxObjectives:
    def test_point_prior_concentrates_design_effort(self):
        # With all the weight on input 0, the optimal unconstrained mechanism
        # reports 0 for input 0 as often as DP allows - more often than the
        # uniform-prior optimum does.
        weighted = design_mechanism(
            4, 0.7, properties=(), objective=Objective(p=0, weights=[1, 0, 0, 0, 0])
        )
        uniform = design_mechanism(4, 0.7, properties=())
        assert weighted.matrix[0, 0] >= uniform.matrix[0, 0] - 1e-9

    def test_minimax_design_bounds_every_column(self):
        from repro.core.losses import per_input_loss

        mechanism = design_mechanism(4, 0.7, objective=Objective.minimax(p=1))
        losses = per_input_loss(mechanism, Objective.l1())
        assert losses.max() == pytest.approx(
            mechanism.metadata["objective_value"], abs=1e-6
        )

    def test_fair_mechanism_cost_is_prior_independent(self):
        # Lemma 1: under fairness the L0 objective value does not depend on the prior.
        uniform_cost = optimal_objective_value(5, 0.8, properties="F")
        skewed_cost = optimal_objective_value(
            5, 0.8, properties="F", objective=Objective(p=0, weights=[5, 1, 1, 1, 1, 1])
        )
        assert uniform_cost == pytest.approx(skewed_cost, abs=1e-7)


class TestSolveProvenance:
    def test_metadata_records_lp_size_and_timings(self):
        mechanism = design_mechanism(6, 0.8, properties="all")
        metadata = mechanism.metadata
        assert metadata["lp_nonzeros"] > 0
        assert metadata["lp_nonzeros"] >= metadata["lp_constraints"]
        assert metadata["lp_build_seconds"] >= 0.0
        assert metadata["lp_solve_seconds"] >= 0.0

    def test_solve_mechanism_lp_without_build_time_omits_key(self):
        from repro.core.constraints import build_mechanism_lp
        from repro.core.design import solve_mechanism_lp

        mechanism = solve_mechanism_lp(build_mechanism_lp(4, 0.7))
        assert "lp_build_seconds" not in mechanism.metadata
        assert mechanism.metadata["lp_solve_seconds"] >= 0.0


class TestDesignMechanismsBatch:
    SPECS = [
        {"n": 3, "alpha": 0.6},
        {"n": 4, "alpha": 0.8, "properties": "all"},
        {"n": 5, "alpha": 0.7, "properties": "WH+CM"},
    ]

    def test_results_in_input_order(self):
        mechanisms = design_mechanisms(self.SPECS)
        assert [m.n for m in mechanisms] == [3, 4, 5]

    def test_parallel_matches_serial(self):
        serial = design_mechanisms(self.SPECS)
        parallel = design_mechanisms(self.SPECS, max_workers=2)
        for a, b in zip(serial, parallel):
            assert np.array_equal(a.matrix, b.matrix)
            assert a.name == b.name
