"""Tests for the synthetic Adult-like dataset (repro.data.adult)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.adult import (
    ADULT_TARGETS,
    AdultDataset,
    generate_adult_like,
    load_adult_csv,
)
from repro.data.groups import group_counts


@pytest.fixture(scope="module")
def adult():
    """A moderately sized synthetic Adult-like dataset shared by this module."""
    return generate_adult_like(num_records=20_000, seed=7)


class TestGenerator:
    def test_size_and_targets(self, adult):
        assert adult.num_records == 20_000
        for name in ADULT_TARGETS:
            column = adult.target(name)
            assert column.shape == (20_000,)
            assert set(np.unique(column)) <= {0, 1}

    def test_marginals_match_published_adult_statistics(self, adult):
        rates = adult.target_rates()
        # UCI Adult: ~27% under 30, ~67% male, ~24% high income.
        assert rates["young"] == pytest.approx(0.29, abs=0.06)
        assert rates["gender"] == pytest.approx(0.67, abs=0.03)
        assert rates["income"] == pytest.approx(0.24, abs=0.05)

    def test_income_correlations_have_right_sign(self, adult):
        age = adult.attributes["age"]
        income = adult.income
        male_rate = income[adult.gender == 1].mean()
        female_rate = income[adult.gender == 0].mean()
        assert male_rate > female_rate
        mid_age = income[(age >= 40) & (age <= 55)].mean()
        young = income[age < 25].mean()
        assert mid_age > young

    def test_reproducible_with_seed(self):
        first = generate_adult_like(num_records=500, seed=11)
        second = generate_adult_like(num_records=500, seed=11)
        assert np.array_equal(first.income, second.income)
        assert np.array_equal(first.young, second.young)

    def test_seed_and_rng_are_mutually_exclusive(self):
        with pytest.raises(ValueError):
            generate_adult_like(num_records=10, rng=np.random.default_rng(0), seed=1)

    def test_group_counts_concentrate_in_the_middle(self, adult):
        # The property Figure 10 relies on: for mid-rate attributes the group
        # counts cluster around n * rate, far from the extremes 0 and n.
        workload = group_counts(adult.gender, 8)
        histogram = workload.histogram()
        assert histogram[0] + histogram[-1] < 0.05
        assert histogram[4:7].sum() > 0.5

    def test_unknown_target_rejected(self, adult):
        with pytest.raises(KeyError):
            adult.target("salary")


class TestSubset:
    def test_subset_size_and_reproducibility(self, adult):
        subset = adult.subset(1000, rng=np.random.default_rng(5))
        assert subset.num_records == 1000
        again = adult.subset(1000, rng=np.random.default_rng(5))
        assert np.array_equal(subset.income, again.income)

    def test_subset_bounds(self, adult):
        with pytest.raises(ValueError):
            adult.subset(adult.num_records + 1)


class TestValidation:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            AdultDataset(young=np.array([0, 1]), gender=np.array([1]), income=np.array([0, 0]))

    def test_non_binary_targets_rejected(self):
        with pytest.raises(ValueError):
            AdultDataset(
                young=np.array([0, 2]), gender=np.array([1, 0]), income=np.array([0, 0])
            )


class TestCsvLoader:
    def test_load_real_format(self, tmp_path):
        # Two rows in the UCI adult.data format (15 comma-separated fields).
        rows = [
            "39, State-gov, 77516, Bachelors, 13, Never-married, Adm-clerical, Not-in-family,"
            " White, Male, 2174, 0, 40, United-States, <=50K",
            "28, Private, 338409, Bachelors, 13, Married-civ-spouse, Prof-specialty, Wife,"
            " Black, Female, 0, 0, 40, Cuba, >50K",
            "",  # blank line should be ignored
        ]
        path = tmp_path / "adult.data"
        path.write_text("\n".join(rows))
        dataset = load_adult_csv(path)
        assert dataset.num_records == 2
        assert dataset.young.tolist() == [0, 1]
        assert dataset.gender.tolist() == [1, 0]
        assert dataset.income.tolist() == [0, 1]

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.data"
        path.write_text("\n")
        with pytest.raises(ValueError):
            load_adult_csv(path)
