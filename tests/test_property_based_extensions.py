"""Property-based tests for the extension layers.

Covers invariants of privacy composition arithmetic, post-processing, the
output-side DP checker, simplex projection and histogram workloads for
randomly drawn parameters.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.output_privacy import max_output_alpha, satisfies_output_dp
from repro.core.transformations import post_process
from repro.eval.estimation import project_to_simplex
from repro.histogram.workloads import zipf_weights
from repro.mechanisms.fair import explicit_fair_mechanism
from repro.mechanisms.geometric import geometric_mechanism
from repro.privacy import (
    PrivacyAccountant,
    compose_parallel,
    compose_sequential,
    per_release_alpha,
    releases_supported,
)

RELAXED = settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])

alphas = st.floats(min_value=0.05, max_value=0.99, allow_nan=False)
positive_alphas = st.floats(min_value=0.01, max_value=0.999, allow_nan=False)


class TestCompositionArithmetic:
    @RELAXED
    @given(values=st.lists(positive_alphas, min_size=1, max_size=8))
    def test_sequential_composition_matches_epsilon_sum(self, values):
        total = compose_sequential(values)
        assert -math.log(total) == pytest.approx(sum(-math.log(v) for v in values), rel=1e-9)
        assert 0.0 < total <= min(values) + 1e-12

    @RELAXED
    @given(values=st.lists(positive_alphas, min_size=1, max_size=8))
    def test_parallel_composition_is_the_minimum(self, values):
        assert compose_parallel(values) == pytest.approx(min(values))

    @RELAXED
    @given(target=st.floats(0.05, 0.9), releases=st.integers(1, 20))
    def test_per_release_alpha_inverts_releases_supported(self, target, releases):
        per_release = per_release_alpha(target, releases)
        assert compose_sequential([per_release] * releases) == pytest.approx(target, rel=1e-9)
        assert releases_supported(per_release, target) >= releases

    @RELAXED
    @given(target=st.floats(0.1, 0.9), release=st.floats(0.3, 0.99))
    def test_accountant_never_exceeds_its_target(self, target, release):
        accountant = PrivacyAccountant(alpha_target=target)
        for _ in range(30):
            if not accountant.can_release(release):
                break
            accountant.record(release)
        assert accountant.spent_alpha() >= target - 1e-12
        assert accountant.remaining_releases(release) == 0 or accountant.can_release(release)


class TestPostProcessingInvariants:
    @RELAXED
    @given(
        n=st.integers(2, 8),
        alpha=alphas,
        data=st.data(),
    )
    def test_random_remap_preserves_privacy_and_stochasticity(self, n, alpha, data):
        base = geometric_mechanism(n, alpha)
        raw = np.array(
            data.draw(
                st.lists(
                    st.lists(st.floats(0.01, 1.0), min_size=n + 1, max_size=n + 1),
                    min_size=n + 1,
                    max_size=n + 1,
                )
            )
        )
        remap = raw / raw.sum(axis=0, keepdims=True)
        processed = post_process(base, remap)
        assert np.allclose(processed.matrix.sum(axis=0), 1.0)
        assert processed.max_alpha() >= base.max_alpha() - 1e-9


class TestOutputPrivacyInvariants:
    @RELAXED
    @given(n=st.integers(1, 12), alpha=alphas)
    def test_em_output_alpha_at_least_alpha(self, n, alpha):
        em = explicit_fair_mechanism(n, alpha)
        assert max_output_alpha(em) >= alpha - 1e-12
        assert satisfies_output_dp(em, alpha)

    @RELAXED
    @given(n=st.integers(2, 12), alpha=alphas)
    def test_gm_output_alpha_closed_form(self, n, alpha):
        gm = geometric_mechanism(n, alpha)
        assert max_output_alpha(gm) == pytest.approx(alpha * (1 - alpha), rel=1e-9)

    @RELAXED
    @given(n=st.integers(1, 10), alpha=alphas, beta=st.floats(0.0, 1.0))
    def test_checker_consistent_with_max_output_alpha(self, n, alpha, beta):
        em = explicit_fair_mechanism(n, alpha)
        achieved = max_output_alpha(em)
        assert satisfies_output_dp(em, beta) == (beta <= achieved + 1e-9)


class TestProjectionAndWorkloads:
    @RELAXED
    @given(values=st.lists(st.floats(-2.0, 2.0), min_size=1, max_size=12))
    def test_simplex_projection_lands_on_the_simplex(self, values):
        projected = project_to_simplex(values)
        assert projected.min() >= -1e-12
        assert projected.sum() == pytest.approx(1.0)

    @RELAXED
    @given(values=st.lists(st.floats(0.0, 1.0), min_size=2, max_size=10))
    def test_simplex_projection_is_idempotent(self, values):
        total = sum(values)
        if total == 0:
            values = [v + 0.1 for v in values]
            total = sum(values)
        on_simplex = np.asarray(values) / total
        assert np.allclose(project_to_simplex(on_simplex), on_simplex, atol=1e-9)

    @RELAXED
    @given(num_buckets=st.integers(1, 30), exponent=st.floats(0.0, 3.0))
    def test_zipf_weights_are_a_sorted_distribution(self, num_buckets, exponent):
        weights = zipf_weights(num_buckets, exponent)
        assert weights.sum() == pytest.approx(1.0)
        assert np.all(np.diff(weights) <= 1e-15)
