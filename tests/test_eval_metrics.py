"""Tests for the empirical error metrics (repro.eval.metrics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.metrics import (
    distance_metric,
    empirical_l0,
    empirical_l0d,
    error_rate,
    exceeds_distance_rate,
    mean_absolute_error,
    mean_signed_error,
    root_mean_square_error,
    summarise,
)

TRUE = [0, 1, 2, 3, 4]
RELEASED = [0, 2, 2, 0, 4]  # two wrong answers, one off by 3


class TestScalarMetrics:
    def test_error_rate(self):
        assert error_rate(TRUE, RELEASED) == pytest.approx(0.4)

    def test_error_rate_zero_when_identical(self):
        assert error_rate(TRUE, TRUE) == 0.0

    def test_exceeds_distance_rate(self):
        assert exceeds_distance_rate(TRUE, RELEASED, 0) == pytest.approx(0.4)
        assert exceeds_distance_rate(TRUE, RELEASED, 1) == pytest.approx(0.2)
        assert exceeds_distance_rate(TRUE, RELEASED, 3) == pytest.approx(0.0)

    def test_exceeds_rejects_negative_d(self):
        with pytest.raises(ValueError):
            exceeds_distance_rate(TRUE, RELEASED, -1)

    def test_mae_rmse_bias(self):
        assert mean_absolute_error(TRUE, RELEASED) == pytest.approx(0.8)
        assert root_mean_square_error(TRUE, RELEASED) == pytest.approx(np.sqrt(10 / 5))
        assert mean_signed_error(TRUE, RELEASED) == pytest.approx(-0.4)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            error_rate([0, 1], [0])

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            error_rate([], [])


class TestRescaledMetrics:
    def test_empirical_l0_scaling(self):
        assert empirical_l0(TRUE, RELEASED, group_size=4) == pytest.approx(0.4 * 5 / 4)

    def test_empirical_l0d_scaling(self):
        assert empirical_l0d(TRUE, RELEASED, d=1, group_size=4) == pytest.approx(0.2 * 5 / 4)

    def test_invalid_group_size(self):
        with pytest.raises(ValueError):
            empirical_l0(TRUE, RELEASED, group_size=0)


class TestHelpers:
    def test_summarise_keys_and_values(self):
        summary = summarise(TRUE, RELEASED)
        assert summary["error_rate"] == pytest.approx(0.4)
        assert summary["rmse"] == pytest.approx(np.sqrt(2.0))
        assert set(summary) == {"error_rate", "exceeds_1_rate", "mae", "rmse", "bias"}

    def test_distance_metric_factory_names_and_values(self):
        metric = distance_metric(2)
        assert metric.__name__ == "exceeds_2_rate"
        assert metric(TRUE, RELEASED) == pytest.approx(0.2)
