"""Durable daemon state: tenant ledgers, restart recovery, deadlines, backpressure.

The load-bearing claims of the durable serving daemon (``--state-dir``):

* a restarted daemon replays every tenant's budget ledger, restoring
  ``alpha_spent``, refusal counts and the exact substream position — its
  post-restart draws are **bit-identical** to an uninterrupted run;
* a charge (or refusal — refusals consume spawns) is durably on disk
  *before* any sample of its batch is drawn, and is charged exactly once
  even when the request is replayed after a crash;
* damaged or config-mismatched ledgers reject only their own tenant;
* deadlines, queue caps and slow-client reaping shed with retriable
  code-3 responses that consume nothing, and never stall the batcher.
"""

from __future__ import annotations

import asyncio
import struct
import time

import numpy as np
import pytest

from repro.core.selector import choose_mechanism
from repro.engine import faults
from repro.engine.durability import AccountantLedger
from repro.engine.plan import ReleasePlan
from repro.serving import AsyncDaemonClient, ServingDaemon, TenantStore
from repro.serving.cache import design_key
from repro.serving.protocol import (
    ERROR,
    OK,
    OVERLOADED,
    REFUSED,
    decode_message,
    tenant_seed_sequence,
)
from repro.serving.tenant_store import tenant_slug

SEED = 20180416


def run(coroutine):
    """Tests drive asyncio directly (pytest-asyncio is not a dependency)."""
    return asyncio.run(coroutine)


async def _start_daemon(**kwargs) -> ServingDaemon:
    kwargs.setdefault("seed", SEED)
    daemon = ServingDaemon(**kwargs)
    await daemon.start(port=0)
    return daemon


async def _connect(daemon: ServingDaemon) -> AsyncDaemonClient:
    return await AsyncDaemonClient.connect(host="127.0.0.1", port=daemon.port)


async def _one_release(daemon, tenant, counts, n, alpha, properties="", **hello):
    client = await _connect(daemon)
    try:
        await client.hello(tenant, **hello)
        return await client.release(counts, n=n, alpha=alpha, properties=properties)
    finally:
        await client.close()


def _engine_reference(tenant, counts, n, alpha, properties, requests_before=0):
    """What serial per-request serving must release for this tenant."""
    plan = ReleasePlan.compile(n, alpha, properties=properties)
    root = tenant_seed_sequence(tenant, server_seed=SEED)
    child = root.spawn(requests_before + 1)[requests_before]
    return [
        int(v)
        for v in plan.execute(np.asarray(counts), rng=np.random.default_rng(child))
    ]


def _tenant_ledger_path(state_dir, name):
    return state_dir / "tenants" / tenant_slug(name) / "ledger.bin"


class TestTenantStore:
    def test_slug_is_readable_and_collision_free(self):
        assert tenant_slug("alice").startswith("alice-")
        assert tenant_slug("a/b") != tenant_slug("a_b")  # digest disambiguates
        assert "/" not in tenant_slug("a/b")

    def test_empty_state_dir_recovers_nothing(self, tmp_path):
        store = TenantStore(tmp_path / "state", server_seed=SEED)
        assert store.recover() == {}
        assert store.quarantined == {} and store.config_rejected == {}

    def test_headerless_ledger_is_forgotten(self, tmp_path):
        store = TenantStore(tmp_path / "state", server_seed=SEED)
        store.recover()
        # A creating process that died before the header reached the disk.
        ghost = tmp_path / "state" / "tenants" / tenant_slug("ghost")
        ghost.mkdir(parents=True)
        (ghost / "ledger.bin").write_bytes(b"")
        again = TenantStore(tmp_path / "state", server_seed=SEED)
        assert again.recover() == {}

    def test_roundtrip_restores_spend_refusals_and_lineage(self, tmp_path):
        store = TenantStore(
            tmp_path / "state", server_seed=SEED, default_budget_alpha=0.5
        )
        store.recover()
        root = tenant_seed_sequence("t", server_seed=SEED)
        ledger = store.create(
            "t", root, tenant_seed=None, budget_alpha=0.5, budget_source="default"
        )
        ledger.charge(0, alpha=0.8, size=3, label="r0")
        ledger.record_refusal(1, label="r1")
        ledger.charge(2, alpha=0.9, size=2, label="r2")
        store.close_all()

        again = TenantStore(
            tmp_path / "state", server_seed=SEED, default_budget_alpha=0.5
        )
        recovered = again.recover()["t"]
        assert recovered.next_seq == 3
        assert recovered.refusals == 1
        assert recovered.ledger.accountant.spent_alpha() == pytest.approx(
            0.8 * 0.9
        )
        # The restored root is positioned past the consumed spawns: its next
        # spawn is the original root's spawn #3, bit for bit.
        fresh = tenant_seed_sequence("t", server_seed=SEED)
        expected = fresh.spawn(4)[3]
        got = recovered.root.spawn(1)[0]
        assert (
            np.random.default_rng(got).random()
            == np.random.default_rng(expected).random()
        )
        again.close_all()

    def test_server_seed_mismatch_is_config_rejected(self, tmp_path):
        store = TenantStore(tmp_path / "state", server_seed=1, default_budget_alpha=0.5)
        store.recover()
        store.create(
            "derived", tenant_seed_sequence("derived", server_seed=1),
            tenant_seed=None, budget_alpha=0.5, budget_source="default",
        )
        # An explicitly-seeded tenant does not depend on the server seed.
        store.create(
            "pinned", tenant_seed_sequence("pinned", tenant_seed=9),
            tenant_seed=9, budget_alpha=0.5, budget_source="hello",
        )
        store.close_all()

        moved = TenantStore(tmp_path / "state", server_seed=2, default_budget_alpha=0.5)
        recovered = moved.recover()
        assert "pinned" in recovered
        assert "derived" in moved.config_rejected
        assert "--seed" in moved.config_rejected["derived"]
        assert moved.rejection_reason("derived") is not None
        assert moved.rejection_reason("pinned") is None
        moved.close_all()

    def test_default_budget_mismatch_is_config_rejected(self, tmp_path):
        store = TenantStore(tmp_path / "state", server_seed=SEED, default_budget_alpha=0.5)
        store.recover()
        store.create(
            "defaulted", tenant_seed_sequence("defaulted", server_seed=SEED),
            tenant_seed=None, budget_alpha=0.5, budget_source="default",
        )
        store.create(
            "explicit", tenant_seed_sequence("explicit", server_seed=SEED),
            tenant_seed=None, budget_alpha=0.25, budget_source="hello",
        )
        store.close_all()

        rebudgeted = TenantStore(
            tmp_path / "state", server_seed=SEED, default_budget_alpha=0.3
        )
        recovered = rebudgeted.recover()
        # The hello-budgeted tenant pins its own target: unaffected.
        assert "explicit" in recovered
        assert "defaulted" in rebudgeted.config_rejected
        assert "--budget-alpha" in rebudgeted.config_rejected["defaulted"]
        rebudgeted.close_all()

    def test_torn_tail_truncated_but_midfile_damage_quarantined(self, tmp_path):
        store = TenantStore(tmp_path / "state", server_seed=SEED, default_budget_alpha=0.5)
        store.recover()
        for name in ("torn", "damaged", "healthy"):
            ledger = store.create(
                name, tenant_seed_sequence(name, server_seed=SEED),
                tenant_seed=None, budget_alpha=0.5, budget_source="default",
            )
            ledger.charge(0, alpha=0.8, size=4, label="r0")
            ledger.charge(1, alpha=0.9, size=4, label="r1")
        store.close_all()

        # A crash mid-append leaves a torn tail: head + truncated payload.
        torn_path = _tenant_ledger_path(tmp_path / "state", "torn")
        with torn_path.open("ab") as handle:
            handle.write(struct.pack("<II", 64, 0) + b"half a record")
        # Mid-file damage is not a crash artifact: flip a byte inside the
        # last complete record's payload so its checksum fails.
        damaged_path = _tenant_ledger_path(tmp_path / "state", "damaged")
        blob = bytearray(damaged_path.read_bytes())
        blob[-10] ^= 0xFF
        damaged_path.write_bytes(bytes(blob))

        again = TenantStore(tmp_path / "state", server_seed=SEED, default_budget_alpha=0.5)
        recovered = again.recover()
        # Torn tail: silently truncated, both complete charges survive.
        assert recovered["torn"].next_seq == 2
        assert recovered["torn"].ledger.accountant.spent_alpha() == pytest.approx(
            0.8 * 0.9
        )
        # Damage quarantines that tenant only; the healthy tenant serves on.
        assert "damaged" in again.quarantined
        assert "checksum" in again.quarantined["damaged"]
        assert recovered["healthy"].next_seq == 2
        again.close_all()

    def test_wrong_directory_ledger_is_quarantined(self, tmp_path):
        store = TenantStore(tmp_path / "state", server_seed=SEED, default_budget_alpha=0.5)
        store.recover()
        store.create(
            "a", tenant_seed_sequence("a", server_seed=SEED),
            tenant_seed=None, budget_alpha=0.5, budget_source="default",
        )
        store.close_all()
        # Rename the directory (sidecar now claims tenant "b"): the pinned
        # name inside the ledger header wins and the mismatch quarantines.
        a_dir = _tenant_ledger_path(tmp_path / "state", "a").parent
        b_dir = a_dir.parent / tenant_slug("b")
        a_dir.rename(b_dir)
        (b_dir / "tenant.json").write_text('{"tenant": "b"}')

        again = TenantStore(tmp_path / "state", server_seed=SEED, default_budget_alpha=0.5)
        again.recover()
        assert "b" in again.quarantined


class TestRestartRecovery:
    """A stopped-and-restarted durable daemon is invisible to its tenants."""

    WORKLOADS = {
        "closed": ("", 40, 0.5, 0.1),
        "sparse": ("WH+CM", 12, 0.9, 0.5),
    }

    def _assert_split_run_matches(self, tmp_path, properties, n, alpha, budget,
                                  plans=None):
        batches = [[1, 2, 3], [4, 5], [0, n]]
        state = tmp_path / "state"

        async def durable_split():
            daemon = await _start_daemon(
                state_dir=state, budget_alpha=budget, batch_window_ms=0.0
            )
            if plans:
                daemon._plans.update(plans())
            first = await _one_release(
                daemon, "t", batches[0], n, alpha, properties
            )
            await daemon.stop()

            restarted = await _start_daemon(
                state_dir=state, budget_alpha=budget, batch_window_ms=0.0
            )
            if plans:
                restarted._plans.update(plans())
            client = await _connect(restarted)
            hello = await client.hello("t")
            rest = [
                await client.release(b, n=n, alpha=alpha, properties=properties)
                for b in batches[1:]
            ]
            await client.close()
            await restarted.stop()
            return [first] + rest, hello

        async def uninterrupted():
            daemon = await _start_daemon(budget_alpha=budget, batch_window_ms=0.0)
            if plans:
                daemon._plans.update(plans())
            client = await _connect(daemon)
            await client.hello("t")
            responses = [
                await client.release(b, n=n, alpha=alpha, properties=properties)
                for b in batches
            ]
            await client.close()
            await daemon.stop()
            return responses

        split, hello = run(durable_split())
        reference = run(uninterrupted())
        assert all(r["code"] == OK for r in split + reference)
        for got, want in zip(split, reference):
            assert got["released"] == want["released"]
        # The post-restart hello restores the budget exactly: one release
        # of cost alpha had been charged before the restart.
        assert hello["budget"]["alpha_spent"] == pytest.approx(alpha)
        assert hello["budget"]["alpha_remaining"] == pytest.approx(
            min(1.0, budget / alpha)
        )
        assert hello["next_seq"] == 1
        assert hello["durable"] is True

    @pytest.mark.parametrize("branch", sorted(WORKLOADS))
    def test_restart_resumes_bit_identical(self, branch, tmp_path):
        properties, n, alpha, budget = self.WORKLOADS[branch]
        self._assert_split_run_matches(tmp_path, properties, n, alpha, budget)

    def test_restart_resumes_bit_identical_dense(self, tmp_path):
        n, alpha, properties = 10, 0.9, "WH+CM"
        mechanism, decision = choose_mechanism(
            n, alpha, properties=properties, representation="dense"
        )
        key = design_key(n, alpha, properties, None, "scipy")

        def plans():
            return {
                key: ReleasePlan(
                    mechanism, decision=decision, alpha_cost=alpha, key=key
                )
            }

        self._assert_split_run_matches(
            tmp_path, properties, n, alpha, 0.5, plans=plans
        )

    def test_refusals_keep_their_spawn_positions_across_restart(self, tmp_path):
        state = tmp_path / "state"
        n = 8

        async def scenario():
            daemon = await _start_daemon(state_dir=state, batch_window_ms=0.0)
            client = await _connect(daemon)
            await client.hello("meter", budget_alpha=0.5)
            first = await client.release([1], n=n, alpha=0.6)
            second = await client.release([2], n=n, alpha=0.7)  # refused
            await client.close()
            await daemon.stop()

            restarted = await _start_daemon(state_dir=state, batch_window_ms=0.0)
            client = await _connect(restarted)
            hello = await client.hello("meter", budget_alpha=0.5)
            third = await client.release([3], n=n, alpha=0.9)
            await client.close()
            await restarted.stop()
            return first, second, third, hello

        first, second, third, hello = run(scenario())
        assert (first["code"], second["code"], third["code"]) == (OK, REFUSED, OK)
        assert hello["budget"]["alpha_spent"] == pytest.approx(0.6)
        assert hello["next_seq"] == 2  # the refusal consumed sequence 1
        assert first["released"] == _engine_reference("meter", [1], n, 0.6, "")
        # The refusal consumed spawn #2 durably: after the restart the third
        # request must sample from spawn #3, exactly as an unbroken run.
        assert third["released"] == _engine_reference(
            "meter", [3], n, 0.9, "", requests_before=2
        )

    def test_quarantined_tenant_rejected_while_others_serve(self, tmp_path):
        state = tmp_path / "state"
        n, alpha = 8, 0.8

        async def scenario():
            daemon = await _start_daemon(state_dir=state, budget_alpha=0.2,
                                         batch_window_ms=0.0)
            await _one_release(daemon, "victim", [1, 2], n, alpha)
            await _one_release(daemon, "bystander", [3, 4], n, alpha)
            await daemon.stop()

            # Flip a byte inside the header record's payload: a complete
            # record failing its checksum is damage, never a torn tail.
            blob_path = _tenant_ledger_path(state, "victim")
            blob = bytearray(blob_path.read_bytes())
            blob[12] ^= 0xFF
            blob_path.write_bytes(bytes(blob))

            restarted = await _start_daemon(state_dir=state, budget_alpha=0.2,
                                            batch_window_ms=0.0)
            client = await _connect(restarted)
            rejected = await client.hello("victim")
            resumed = await client.hello("bystander")
            served = await client.release([5], n=n, alpha=alpha)
            health = await client.health()
            await client.close()
            await restarted.stop()
            return rejected, resumed, served, health

        rejected, resumed, served, health = run(scenario())
        assert rejected["code"] == ERROR
        assert "quarantine" in rejected["error"] or "damaged" in rejected["error"]
        assert resumed["code"] == OK
        assert resumed["budget"]["alpha_spent"] == pytest.approx(alpha)
        assert served["code"] == OK
        assert served["released"] == _engine_reference(
            "bystander", [5], n, alpha, "", requests_before=1
        )
        assert health["health"]["quarantined_tenants"] == 1
        assert health["health"]["recovered_tenants"] == 1

    def test_seed_mismatch_rejects_tenant_with_clear_error(self, tmp_path):
        state = tmp_path / "state"

        async def scenario():
            daemon = await _start_daemon(state_dir=state, budget_alpha=0.5,
                                         batch_window_ms=0.0)
            await _one_release(daemon, "t", [1], 8, 0.8)
            await daemon.stop()

            reseeded = await _start_daemon(seed=SEED + 1, state_dir=state,
                                           budget_alpha=0.5, batch_window_ms=0.0)
            client = await _connect(reseeded)
            response = await client.hello("t")
            await client.close()
            await reseeded.stop()
            return response

        response = run(scenario())
        assert response["code"] == ERROR
        assert "--seed" in response["error"]

    def test_durable_daemon_refuses_unmetered_tenants(self, tmp_path):
        async def scenario():
            daemon = await _start_daemon(
                state_dir=tmp_path / "state", batch_window_ms=0.0
            )
            client = await _connect(daemon)
            response = await client.hello("free-rider")  # no budget anywhere
            await client.close()
            await daemon.stop()
            return response

        response = run(scenario())
        assert response["code"] == ERROR
        assert "budget" in response["error"]


class TestReplay:
    """Re-sent sequence numbers are served exactly once, bit for bit."""

    def test_replay_returns_same_bits_without_recharging(self, tmp_path):
        state = tmp_path / "state"
        n, alpha = 8, 0.8

        async def scenario():
            daemon = await _start_daemon(state_dir=state, budget_alpha=0.2,
                                         batch_window_ms=0.0)
            client = await _connect(daemon)
            await client.hello("t")
            original = await client.release([1, 2], n=n, alpha=alpha)
            await client.close()
            await daemon.stop()

            restarted = await _start_daemon(state_dir=state, budget_alpha=0.2,
                                            batch_window_ms=0.0)
            client = await _connect(restarted)
            await client.hello("t")
            replayed = await client.release([1, 2], n=n, alpha=alpha, seq=0)
            replayed_again = await client.release([1, 2], n=n, alpha=alpha, seq=0)
            spent = restarted._tenants["t"].accountant.spent_alpha()
            stats = restarted.stats_payload()
            await client.close()
            await restarted.stop()
            return original, replayed, replayed_again, spent, stats

        original, replayed, replayed_again, spent, stats = run(scenario())
        assert original["code"] == OK and replayed["code"] == OK
        assert replayed["released"] == original["released"]
        assert replayed_again["released"] == original["released"]
        assert replayed["replayed"] is True and replayed["seq"] == 0
        # Replays never touch the budget: exactly one charge, ever.
        assert spent == pytest.approx(alpha)
        assert stats["replays"] == 2

    def test_replay_with_diverged_request_is_refused(self, tmp_path):
        state = tmp_path / "state"

        async def scenario():
            daemon = await _start_daemon(state_dir=state, budget_alpha=0.2,
                                         batch_window_ms=0.0)
            client = await _connect(daemon)
            await client.hello("t")
            await client.release([1, 2], n=8, alpha=0.8)
            diverged = await client.release([3, 4], n=8, alpha=0.8, seq=0)
            ahead = await client.release([1], n=8, alpha=0.8, seq=7)
            await client.close()
            await daemon.stop()
            return diverged, ahead

        diverged, ahead = run(scenario())
        assert diverged["code"] == ERROR and "checksum" in diverged["error"]
        assert ahead["code"] == ERROR  # seq far ahead of the next sequence

    def test_refused_sequence_replays_as_refusal(self, tmp_path):
        state = tmp_path / "state"

        async def scenario():
            daemon = await _start_daemon(state_dir=state, batch_window_ms=0.0)
            client = await _connect(daemon)
            await client.hello("meter", budget_alpha=0.5)
            first = await client.release([1], n=8, alpha=0.6)   # spends 0.6
            refused = await client.release([2], n=8, alpha=0.7)  # 0.42 < 0.5
            replay = await client.release([2], n=8, alpha=0.7, seq=1)
            await client.close()
            await daemon.stop()
            return first, refused, replay

        first, refused, replay = run(scenario())
        assert first["code"] == OK
        assert refused["code"] == REFUSED and refused["seq"] == 1
        assert replay["code"] == REFUSED and replay["replayed"] is True

    def test_done_marks_written_after_response(self, tmp_path):
        state = tmp_path / "state"

        async def scenario():
            daemon = await _start_daemon(state_dir=state, budget_alpha=0.2,
                                         batch_window_ms=0.0)
            client = await _connect(daemon)
            await client.hello("t")
            await client.release([1, 2], n=8, alpha=0.8)
            # Give the post-write callback a beat to run.
            await asyncio.sleep(0.05)
            ledger = daemon._tenants["t"].ledger
            charged, done = ledger.charged(0), ledger.is_done(0)
            await client.close()
            await daemon.stop()
            return charged, done

        charged, done = run(scenario())
        assert charged and done


class TestDeadlinesAndBackpressure:
    def test_expired_deadline_sheds_with_code_3_consuming_nothing(self):
        async def scenario():
            # Window long enough that the deadline always fires first; the
            # idle second connection keeps pending < connections so the
            # batcher actually waits out the window.
            daemon = await _start_daemon(
                batch_window_ms=300.0, request_timeout=0.01
            )
            idle = await _connect(daemon)
            client = await _connect(daemon)
            await client.hello("t")
            shed = await client.release([1, 2], n=8, alpha=0.8)
            # With the idle connection gone, every live connection has a
            # request waiting at admission: the retry flushes immediately,
            # well inside its deadline.
            await idle.close()
            await asyncio.sleep(0.05)
            served = await client.release([1, 2], n=8, alpha=0.8)
            stats = daemon.stats_payload()
            await client.close()
            await daemon.stop()
            return shed, served, stats

        shed, served, stats = run(scenario())
        assert shed["code"] == OVERLOADED and shed["retriable"] is True
        assert "deadline" in shed["error"]
        assert served["code"] == OK
        # The shed request consumed no spawn: the retry samples spawn #0,
        # exactly as if the shed request had never been sent.
        assert served["released"] == _engine_reference("t", [1, 2], 8, 0.8, "")
        assert stats["deadline_expired"] == 1
        assert stats["overloaded"] == 1

    def test_max_pending_sheds_overflow(self):
        async def scenario():
            daemon = await _start_daemon(batch_window_ms=30_000.0, max_pending=1)
            idle = [await _connect(daemon) for _ in range(2)]
            clients = []
            for name in ("a", "b"):
                client = await _connect(daemon)
                await client.hello(name)
                clients.append(client)
            held = asyncio.create_task(clients[0].release([1], n=8, alpha=0.8))
            await asyncio.sleep(0.05)  # first request now parks in the queue
            shed = await clients[1].release([2], n=8, alpha=0.8)
            await daemon.stop()
            first = await held
            for client in clients + idle:
                await client.close()
            return shed, first

        shed, first = run(scenario())
        assert shed["code"] == OVERLOADED and "queue" in shed["error"]
        assert first["code"] == OK  # the queued request is served on stop

    def test_max_inflight_caps_one_tenant_not_others(self):
        async def scenario():
            daemon = await _start_daemon(batch_window_ms=30_000.0, max_inflight=1)
            idle = [await _connect(daemon) for _ in range(3)]
            greedy_1 = await _connect(daemon)
            greedy_2 = await _connect(daemon)
            modest = await _connect(daemon)
            await greedy_1.hello("greedy")
            await greedy_2.hello("greedy")
            await modest.hello("modest")
            held = asyncio.create_task(greedy_1.release([1], n=8, alpha=0.8))
            await asyncio.sleep(0.05)
            shed = await greedy_2.release([2], n=8, alpha=0.8)
            ok_task = asyncio.create_task(modest.release([3], n=8, alpha=0.8))
            await asyncio.sleep(0.05)
            await daemon.stop()
            first, other = await held, await ok_task
            for client in (greedy_1, greedy_2, modest, *idle):
                await client.close()
            return shed, first, other

        shed, first, other = run(scenario())
        assert shed["code"] == OVERLOADED and "in flight" in shed["error"]
        assert first["code"] == OK
        assert other["code"] == OK  # the cap is per-tenant

    def test_health_and_drain_ops(self, tmp_path):
        async def scenario():
            daemon = await _start_daemon(
                state_dir=tmp_path / "state", budget_alpha=0.5,
                batch_window_ms=0.0,
            )
            client = await _connect(daemon)
            health = await client.health()
            drained = await client.drain()
            await asyncio.wait_for(daemon.wait_closed(), timeout=5.0)
            await client.close()
            return health, drained

        health, drained = run(scenario())
        assert health["code"] == OK
        payload = health["health"]
        assert payload["status"] == "ok" and payload["durable"] is True
        assert payload["pending"] == 0 and payload["connections"] == 1
        assert drained["code"] == OK
        assert drained["stats"]["durable"] is True

    def test_oversized_request_line_answered_then_closed(self):
        async def scenario():
            daemon = await _start_daemon(batch_window_ms=0.0, max_line_bytes=2048)
            client = await _connect(daemon)
            client._writer.write(b"x" * 5000 + b"\n")
            await client._writer.drain()
            line = await client._reader.readline()
            from repro.serving.protocol import decode_message

            response = decode_message(line)
            eof = await client._reader.readline()
            await client.close()
            stats = daemon.stats_payload()
            await daemon.stop()
            return response, eof, stats

        response, eof, stats = run(scenario())
        assert response["code"] == ERROR
        assert "max-line-bytes" in response["error"]
        assert eof == b""  # framing is untrustworthy: the connection closes
        assert stats["protocol_errors"] == 1

    def test_stalled_client_is_reaped_without_blocking_others(self, tmp_path):
        async def scenario():
            injector = faults.FaultInjector(client_stall=1, hang_seconds=5.0)
            faults.install(injector)
            try:
                daemon = await _start_daemon(
                    batch_window_ms=0.0,
                    client_timeout=0.2,
                    state_dir=tmp_path / "state",
                    budget_alpha=0.2,
                )
                stalled = await _connect(daemon)
                await stalled.hello("stalled")  # response write #0
                started = time.monotonic()
                # Response write #1 stalls server-side for hang_seconds
                # (the bytes themselves were already flushed, so the
                # response still arrives); the client timeout must reap
                # the connection long before the stall ends.
                first = await stalled.release([1], n=8, alpha=0.8)
                while daemon.stats.clients_reaped == 0:
                    assert time.monotonic() - started < 3.0, "never reaped"
                    await asyncio.sleep(0.02)
                reap_latency = time.monotonic() - started
                # The reaped connection is dead for the client too.
                with pytest.raises(ConnectionError):
                    await stalled.release([2], n=8, alpha=0.8)
                # The reap broke the connection *before* the post-write
                # done-mark: the stalled request sits charged-but-not-done
                # in the replay window, charged exactly once.
                ledger = daemon._tenants["stalled"].ledger
                window = (ledger.charged(0), ledger.is_done(0))
                # The daemon (and every other client) kept serving.
                healthy = await _one_release(daemon, "fine", [2], 8, 0.8)
                stats = daemon.stats_payload()
                await stalled.close()
                await daemon.stop()
                return first, reap_latency, window, healthy, stats
            finally:
                faults.reset()

        first, reap_latency, window, healthy, stats = run(scenario())
        assert first["code"] == OK
        assert window == (True, False)
        assert reap_latency < 3.0  # reaped by the timeout, not the 5 s stall
        assert stats["clients_reaped"] == 1
        assert healthy["code"] == OK
        # The stalled request *was* served and charged before its write
        # stalled: the spawn is consumed, exactly like a crashed client.
        assert healthy["released"] == _engine_reference("fine", [2], 8, 0.8, "")


class TestDisconnectMidBatch:
    def test_disconnect_while_request_pending_charges_once_and_serves_on(
        self, tmp_path
    ):
        """A client that dies before its response: charge stands, nobody stalls."""
        state = tmp_path / "state"

        async def scenario():
            daemon = await _start_daemon(
                state_dir=state, budget_alpha=0.2, batch_window_ms=500.0
            )
            doomed = await _connect(daemon)
            await doomed.hello("doomed")
            survivor = await _connect(daemon)
            await survivor.hello("survivor")
            # The doomed request parks in the batcher (1 pending < 2
            # connections), then its connection is aborted — the RST is on
            # the wire before the survivor's admission triggers the flush,
            # so the daemon's response write to the dead peer must fail.
            doomed._writer.write(
                b'{"op": "release", "counts": [1, 2], "n": 8, "alpha": 0.8}\n'
            )
            await doomed._writer.drain()
            await asyncio.sleep(0.05)
            doomed._writer.transport.abort()
            await asyncio.sleep(0.1)
            task = asyncio.create_task(survivor.release([3], n=8, alpha=0.8))
            response = await asyncio.wait_for(task, timeout=5.0)
            await asyncio.sleep(0.05)
            session = daemon._tenants["doomed"]
            charged = session.ledger.charged(0)
            done = session.ledger.is_done(0)
            spent = session.accountant.spent_alpha()
            followup = await _one_release(daemon, "third", [4], 8, 0.8)
            await survivor.close()
            await daemon.stop()
            return response, charged, done, spent, followup

        response, charged, done, spent, followup = run(scenario())
        # The survivor's draw is unperturbed by the dead peer.
        assert response["code"] == OK
        assert response["released"] == _engine_reference(
            "survivor", [3], 8, 0.8, ""
        )
        # The doomed request was charged exactly once, durably.  (The
        # done-mark may or may not have landed — TCP cannot tell a dead
        # reader from a slow one on the first write; either way the charge
        # is exactly-once and the worst case is one bit-identical replay.)
        assert charged
        assert done in (True, False)
        assert spent == pytest.approx(0.8)
        # The daemon is fully healthy afterwards.
        assert followup["code"] == OK

    def test_dead_connection_reflushes_the_batcher(self):
        """Losing a connection re-evaluates the all-connections-waiting flush."""

        async def scenario():
            daemon = await _start_daemon(batch_window_ms=30_000.0)
            lurker = await _connect(daemon)
            client = await _connect(daemon)
            await client.hello("t")
            # pending(1) < connections(2): the request parks on the window.
            task = asyncio.create_task(client.release([1], n=8, alpha=0.8))
            await asyncio.sleep(0.05)
            assert len(daemon._pending) == 1
            # The lurker leaves: now every live connection has a request
            # waiting, so the batcher must flush without the 30 s window.
            await lurker.close()
            response = await asyncio.wait_for(task, timeout=5.0)
            await client.close()
            await daemon.stop()
            return response

        response = run(scenario())
        assert response["code"] == OK
        assert response["released"] == _engine_reference("t", [1], 8, 0.8, "")
