"""Tests for the batch serving layer (repro.serving) and vectorised sampling."""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro
from repro.core.losses import Objective
from repro.core.mechanism import Mechanism
from repro.histogram.release import histogram_via_session
from repro.lp.solver import LPSolution, solve_call_count
from repro.mechanisms.fair import explicit_fair_mechanism
from repro.mechanisms.geometric import geometric_mechanism
from repro.serving import BatchReleaseSession, DesignCache, ReleaseRequest, design_key


# --------------------------------------------------------------------- #
# Vectorised sampling: apply_batch vs the scalar path
# --------------------------------------------------------------------- #
class TestApplyBatch:
    @pytest.mark.parametrize(
        "mechanism",
        [
            geometric_mechanism(12, 0.9),
            explicit_fair_mechanism(12, 0.9),
            repro.design_mechanism(7, 0.85, properties="WH+CM+S"),
            repro.uniform_mechanism(5),
        ],
        ids=["GM", "EM", "WM", "UM"],
    )
    def test_batch_matches_scalar_with_same_rng_stream(self, mechanism):
        counts = np.random.default_rng(11).integers(0, mechanism.n + 1, size=5_000)
        batch = mechanism.apply_batch(counts, rng=np.random.default_rng(2018))
        rng = np.random.default_rng(2018)
        scalar = np.array([mechanism.sample(int(c), rng=rng) for c in counts])
        assert np.array_equal(batch, scalar)

    def test_apply_routes_arrays_through_apply_batch(self):
        mechanism = geometric_mechanism(9, 0.8)
        counts = np.arange(10) % (mechanism.n + 1)
        via_apply = mechanism.apply(counts, rng=np.random.default_rng(5))
        via_batch = mechanism.apply_batch(counts, rng=np.random.default_rng(5))
        assert np.array_equal(via_apply, via_batch)

    def test_outputs_lie_in_range_and_match_distribution(self):
        mechanism = explicit_fair_mechanism(6, 0.9)
        counts = np.full(200_000, 3)
        draws = mechanism.apply_batch(counts, rng=np.random.default_rng(0))
        assert draws.min() >= 0 and draws.max() <= 6
        empirical = np.bincount(draws, minlength=7) / draws.size
        assert np.allclose(empirical, mechanism.probabilities(3), atol=5e-3)

    def test_empty_batch(self):
        mechanism = geometric_mechanism(4, 0.7)
        released = mechanism.apply_batch([], rng=np.random.default_rng(0))
        assert released.shape == (0,)

    def test_rejects_out_of_range_and_non_1d(self):
        mechanism = geometric_mechanism(4, 0.7)
        with pytest.raises(ValueError):
            mechanism.apply_batch([5], rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            mechanism.apply_batch([-1], rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            mechanism.apply_batch(np.zeros((2, 2), dtype=int))

    def test_uniform_within_one_ulp_of_one_stays_in_range(self):
        # fl(count + u) can round to count + 1 when u is within one ulp of
        # 1, letting the flattened search run into the next column's block;
        # the clamp + fix-up must still return the exact inverse-CDF index.
        class _NearOneRng:
            def random(self, size):
                return np.full(size, 1.0 - 2.0**-53)

        mechanism = Mechanism(np.eye(4), name="identity")
        released = mechanism.apply_batch([1, 2], rng=_NearOneRng())
        # The identity mechanism must report the truth for any uniform < 1.
        assert released.tolist() == [1, 2]

    def test_column_cdfs_cached_and_well_formed(self):
        mechanism = geometric_mechanism(8, 0.9)
        cdfs = mechanism.column_cdfs()
        assert cdfs is mechanism.column_cdfs()  # cached
        assert cdfs.shape == (9, 9)
        assert np.all(np.diff(cdfs, axis=1) >= 0)
        assert np.allclose(cdfs[:, -1], 1.0)


# --------------------------------------------------------------------- #
# DesignCache
# --------------------------------------------------------------------- #
class TestDesignCache:
    def test_canonical_keys_ignore_property_spelling(self):
        assert design_key(8, 0.9, "WH+CM") == design_key(8, 0.9, ["CM", "WH"])
        assert design_key(8, 0.9, "WH") != design_key(8, 0.9, "WH+CM")
        assert design_key(8, 0.9, (), Objective.l1()) != design_key(8, 0.9, ())

    def test_hit_skips_selector_and_solver(self):
        cache = DesignCache()
        before = solve_call_count()
        first, first_decision = cache.get_or_design(6, 0.95, properties="WH+CM")
        assert solve_call_count() == before + 1  # WM branch solves once
        second, second_decision = cache.get_or_design(6, 0.95, properties="CM+WH")
        assert solve_call_count() == before + 1  # no further LP work
        assert first.allclose(second)
        assert first_decision.branch == second_decision.branch
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)

    def test_hits_return_isolated_mechanisms(self):
        cache = DesignCache()
        first, _ = cache.get_or_design(5, 0.9, properties="F")
        first.metadata["tampered"] = True
        second, _ = cache.get_or_design(5, 0.9, properties="F")
        assert "tampered" not in second.metadata
        assert second.metadata["design_cache"] == "memory"

    def test_lru_eviction(self):
        cache = DesignCache(capacity=2)
        cache.get_or_design(3, 0.9)
        cache.get_or_design(4, 0.9)
        cache.get_or_design(3, 0.9)  # refresh n=3
        cache.get_or_design(5, 0.9)  # evicts n=4 (least recently used)
        assert cache.stats().evictions == 1
        assert design_key(3, 0.9) in cache
        assert design_key(4, 0.9) not in cache
        assert design_key(5, 0.9) in cache
        # Re-requesting the evicted design is a miss again.
        misses = cache.stats().misses
        cache.get_or_design(4, 0.9)
        assert cache.stats().misses == misses + 1

    def test_on_disk_round_trip(self, tmp_path):
        warm = DesignCache(directory=tmp_path)
        designed, decision = warm.get_or_design(6, 0.95, properties="WH+CM")
        assert (tmp_path / "registry.sqlite").exists()
        assert len(warm.registry) == 1

        cold = DesignCache(directory=tmp_path)
        before = solve_call_count()
        loaded, loaded_decision = cold.get_or_design(6, 0.95, properties="WH+CM")
        assert solve_call_count() == before  # served from the registry, no LP
        assert loaded.allclose(designed)
        assert loaded.metadata["design_cache"] == "disk"
        assert loaded_decision == decision
        assert cold.stats().disk_hits == 1
        assert cold.stats().tiers == {"memory": 0, "registry": 1, "solve": 0}

    def test_corrupt_disk_entry_falls_back_to_solving(self, tmp_path):
        cache = DesignCache(directory=tmp_path)
        cache.get_or_design(4, 0.9, properties="F")
        key = design_key(4, 0.9, properties="F")
        cache.registry.corrupt_row(key)
        fresh = DesignCache(directory=tmp_path)
        mechanism, _ = fresh.get_or_design(4, 0.9, properties="F")
        assert mechanism.metadata["design_cache"] == "solve"
        assert fresh.stats().corrupt_rows == 1
        # The corrupt row was overwritten: the next process hits it again.
        again = DesignCache(directory=tmp_path)
        hit, _ = again.get_or_design(4, 0.9, properties="F")
        assert hit.metadata["design_cache"] == "disk"

    def test_clear(self, tmp_path):
        cache = DesignCache(directory=tmp_path)
        cache.get_or_design(3, 0.8)
        assert len(cache) == 1
        cache.clear(disk=True)
        assert len(cache) == 0
        assert len(cache.registry) == 0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            DesignCache(capacity=0)

    def test_choose_mechanism_routes_through_cache(self):
        cache = DesignCache()
        repro.choose_mechanism(5, 0.9, properties="F", cache=cache)
        mechanism, _ = repro.choose_mechanism(5, 0.9, properties="F", cache=cache)
        assert mechanism.metadata["design_cache"] == "memory"
        assert cache.stats().hits == 1

    def test_thread_pool_hammer(self):
        """Concurrent tenants on one cache: consistent counters, one solve per key.

        The serving daemon shares a single cache across tenants; before the
        RLock, concurrent ``get_or_design``/``_evict`` calls could corrupt
        the LRU ``OrderedDict`` mid-iteration.  Hammer a capacity-bounded
        cache from a thread pool and check every invariant the lock must
        protect: no exceptions, hits + misses == requests, the LRU never
        exceeds capacity, and concurrent misses on one key serialise into
        exactly one design (every returned mechanism per key is identical).
        """
        from concurrent.futures import ThreadPoolExecutor

        # GM/EM closed forms only — no LP solves, so the hammer stays fast.
        settings = [(3, 0.9, ""), (4, 0.8, ""), (5, 0.9, "F"), (6, 0.7, ""),
                    (7, 0.9, "F"), (8, 0.6, "")]
        cache = DesignCache(capacity=4)  # smaller than the key set: evictions

        def worker(worker_index):
            results = []
            for step in range(30):
                n, alpha, properties = settings[(worker_index + step) % len(settings)]
                mechanism, decision = cache.get_or_design(
                    n, alpha, properties=properties
                )
                results.append((n, mechanism, decision.branch))
            return results

        with ThreadPoolExecutor(max_workers=8) as pool:
            outcomes = [future.result() for future in
                        [pool.submit(worker, i) for i in range(8)]]

        by_n = {}
        for results in outcomes:
            for n, mechanism, branch in results:
                assert mechanism.n == n
                by_n.setdefault(n, []).append((mechanism, branch))
        for n, produced in by_n.items():
            first, first_branch = produced[0]
            for mechanism, branch in produced[1:]:
                assert branch == first_branch
                assert mechanism.allclose(first)  # one design per key, ever

        stats = cache.stats()
        assert stats.requests == 8 * 30
        assert stats.hits + stats.misses == stats.requests
        assert len(cache) <= cache.capacity
        # Conservation under the lock: every miss inserts one entry, every
        # eviction removes one, hits change nothing — a torn update would
        # break this exact balance.
        assert stats.misses == stats.evictions + len(cache)
        assert stats.misses >= len(settings)


# --------------------------------------------------------------------- #
# BatchReleaseSession
# --------------------------------------------------------------------- #
class TestBatchReleaseSession:
    def _mixed_requests(self):
        return [
            ReleaseRequest(group=f"g{i}", count=i % 5, n=8, alpha=0.9,
                           properties="F" if i % 2 else "")
            for i in range(20)
        ]

    def test_preserves_input_order_and_routes_designs(self):
        session = BatchReleaseSession(rng=np.random.default_rng(1))
        results = session.release(self._mixed_requests())
        assert [r.group for r in results] == [f"g{i}" for i in range(20)]
        assert all(r.mechanism == "EM" for r in results[1::2])
        assert all(r.mechanism == "GM" for r in results[0::2])
        assert all(0 <= r.released <= 8 for r in results)
        assert session.stats.distinct_designs == 2

    def test_reproducible_with_seeded_generator(self):
        first = BatchReleaseSession(rng=np.random.default_rng(42))
        second = BatchReleaseSession(rng=np.random.default_rng(42))
        a = first.release(self._mixed_requests())
        b = second.release(self._mixed_requests())
        assert [r.released for r in a] == [r.released for r in b]

    def test_repeat_traffic_never_resolves_the_lp(self):
        session = BatchReleaseSession(rng=np.random.default_rng(0))
        counts = np.random.default_rng(1).integers(0, 7, size=100)
        session.release_counts(counts, n=6, alpha=0.95, properties="WH+CM")
        before = solve_call_count()
        for _ in range(5):
            session.release_counts(counts, n=6, alpha=0.95, properties="WH+CM")
        assert solve_call_count() == before

    def test_release_counts_matches_direct_apply_batch(self):
        session = BatchReleaseSession(rng=np.random.default_rng(9))
        counts = np.array([0, 3, 5, 2, 4])
        released = session.release_counts(counts, n=5, alpha=0.9, properties="F")
        mechanism = explicit_fair_mechanism(5, 0.9)
        expected = mechanism.apply_batch(counts, rng=np.random.default_rng(9))
        assert np.array_equal(released, expected)

    def test_empty_stream(self):
        session = BatchReleaseSession()
        assert session.release([]) == []

    def test_request_validates_count_range(self):
        with pytest.raises(ValueError):
            ReleaseRequest(group="g", count=9, n=8, alpha=0.9)

    def test_describe_mentions_traffic(self):
        session = BatchReleaseSession(rng=np.random.default_rng(0))
        session.release_counts([1, 2, 3], n=4, alpha=0.8)
        text = session.describe()
        assert "records=3" in text and "designs=1" in text

    def test_histogram_via_session(self):
        session = BatchReleaseSession(rng=np.random.default_rng(4))
        hist = histogram_via_session(session, [3, 5, 2, 8, 0], alpha=0.9, properties="F")
        assert hist.num_buckets == 5
        assert hist.mechanism_name == "EM"
        assert hist.alpha == 0.9
        swapped = histogram_via_session(
            session, [3, 5, 2], alpha=0.9, neighbouring="swap"
        )
        assert swapped.alpha == pytest.approx(0.81)


# --------------------------------------------------------------------- #
# End-to-end reproducibility with a shared generator
# --------------------------------------------------------------------- #
class TestSharedGeneratorEndToEnd:
    def test_histogram_release_uses_instance_generator(self):
        kwargs = dict(mechanism_factory=repro.geometric_mechanism, alpha=0.9)
        first = repro.histogram.HistogramRelease(rng=np.random.default_rng(3), **kwargs)
        second = repro.histogram.HistogramRelease(rng=np.random.default_rng(3), **kwargs)
        counts = [4, 1, 7, 2]
        assert np.array_equal(
            first.release(counts).released_counts,
            second.release(counts).released_counts,
        )

    def test_call_level_rng_overrides_instance_rng(self):
        release = repro.histogram.HistogramRelease(
            repro.geometric_mechanism, 0.9, rng=np.random.default_rng(3)
        )
        counts = [4, 1, 7, 2]
        a = release.release(counts, rng=np.random.default_rng(11)).released_counts
        b = release.release(counts, rng=np.random.default_rng(11)).released_counts
        assert np.array_equal(a, b)


# --------------------------------------------------------------------- #
# LP solution serialisation
# --------------------------------------------------------------------- #
class TestLPSolutionSerialisation:
    def test_round_trip(self):
        from repro.core.constraints import build_mechanism_lp
        from repro.lp.solver import solve

        lp = build_mechanism_lp(n=3, alpha=0.8, properties=frozenset(),
                                objective=Objective.l0())
        solution = solve(lp.program)
        payload = json.loads(json.dumps(solution.to_dict()))
        restored = LPSolution.from_dict(payload)
        assert restored.status == solution.status
        assert restored.backend == solution.backend
        assert restored.objective == pytest.approx(solution.objective)
        assert np.allclose(restored.values, solution.values)
        assert restored.by_name == pytest.approx(solution.by_name)


# --------------------------------------------------------------------- #
# serve-batch CLI
# --------------------------------------------------------------------- #
class TestServeBatchCommand:
    def test_homogeneous_batch(self, capsys):
        from repro.cli import main

        exit_code = main(
            ["serve-batch", "--n", "8", "--alpha", "0.9", "--properties", "F",
             "--counts", "3", "5", "2", "--seed", "7", "--stats"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        lines = out.strip().splitlines()
        assert len([l for l in lines if l.isdigit()]) == 3
        assert "lp_solves=0" in out  # the F branch is explicit, no LP

    def test_mixed_requests_file_and_disk_cache(self, tmp_path, capsys):
        from repro.cli import main

        requests = tmp_path / "requests.csv"
        requests.write_text(
            "group,count,n,alpha,properties\n"
            "nyc,3,8,0.9,F\n"
            "sf,5,8,0.9,F\n"
            "la,2,6,0.95,WH+CM\n"
        )
        cache_dir = tmp_path / "designs"
        arguments = ["serve-batch", "--requests-file", str(requests),
                     "--seed", "1", "--cache-dir", str(cache_dir), "--stats"]
        main(arguments)
        first = capsys.readouterr().out
        assert "nyc," in first and "la," in first
        assert "lp_solves=1" in first  # the WM design solved once

        main(arguments)
        second = capsys.readouterr().out
        assert "lp_solves=0" in second  # served from the on-disk cache
        # Same seed + same requests => identical released counts.
        strip = lambda text: [l for l in text.splitlines() if "," in l]
        assert strip(first) == strip(second)

    def test_output_file(self, tmp_path, capsys):
        from repro.cli import main

        out_path = tmp_path / "released.txt"
        main(["serve-batch", "--n", "4", "--alpha", "0.8",
              "--counts", "1", "2", "--seed", "0", "--output", str(out_path)])
        assert len(out_path.read_text().splitlines()) == 2
        assert "wrote 2 released counts" in capsys.readouterr().out

    def test_validates_arguments(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["serve-batch", "--counts", "1"])  # missing n/alpha
        with pytest.raises(SystemExit):
            main(["serve-batch", "--n", "4", "--alpha", "0.8", "--counts", "9"])
        bad = tmp_path / "bad.csv"
        bad.write_text("onlyone\n")
        with pytest.raises(SystemExit):
            main(["serve-batch", "--requests-file", str(bad)])
