"""Tests for the geometric mechanism GM (repro.mechanisms.geometric)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.losses import l0_score
from repro.core.properties import satisfies_differential_privacy
from repro.core.theory import gm_corner_value, gm_diagonal_interior, gm_l0_score
from repro.mechanisms.geometric import (
    geometric_matrix,
    geometric_mechanism,
    sample_geometric_mechanism,
    two_sided_geometric_noise,
)


class TestFigure3Structure:
    """The matrix must match the closed form shown in Figure 3."""

    @pytest.mark.parametrize("n,alpha", [(3, 0.5), (5, 0.62), (7, 0.9)])
    def test_truncation_rows(self, n, alpha):
        matrix = geometric_matrix(n, alpha)
        x = gm_corner_value(alpha)
        for j in range(n + 1):
            assert matrix[0, j] == pytest.approx(x * alpha**j)
            assert matrix[n, j] == pytest.approx(x * alpha ** (n - j))

    @pytest.mark.parametrize("n,alpha", [(3, 0.5), (5, 0.62), (7, 0.9)])
    def test_interior_rows(self, n, alpha):
        matrix = geometric_matrix(n, alpha)
        y = gm_diagonal_interior(alpha)
        for i in range(1, n):
            for j in range(n + 1):
                assert matrix[i, j] == pytest.approx(y * alpha ** abs(i - j))

    @pytest.mark.parametrize("n,alpha", [(2, 0.3), (4, 0.62), (9, 0.95)])
    def test_columns_sum_to_one(self, n, alpha):
        matrix = geometric_matrix(n, alpha)
        assert np.allclose(matrix.sum(axis=0), 1.0)

    @pytest.mark.parametrize("alpha", [0.1, 0.5, 0.9, 0.99])
    def test_dp_is_tight_at_alpha(self, alpha):
        gm = geometric_mechanism(6, alpha)
        assert gm.max_alpha() == pytest.approx(alpha)
        assert satisfies_differential_privacy(gm, alpha)

    def test_l0_score_closed_form(self):
        for alpha in (0.3, 0.62, 0.9):
            assert l0_score(geometric_mechanism(8, alpha)) == pytest.approx(gm_l0_score(alpha))

    def test_limit_alpha_zero_is_identity(self):
        assert np.allclose(geometric_matrix(4, 0.0), np.eye(5))

    def test_limit_alpha_one_splits_between_extremes(self):
        matrix = geometric_matrix(4, 1.0)
        assert np.allclose(matrix[0, :], 0.5)
        assert np.allclose(matrix[4, :], 0.5)
        assert np.allclose(matrix[1:4, :], 0.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            geometric_matrix(0, 0.5)
        with pytest.raises(ValueError):
            geometric_matrix(4, 1.5)


class TestExampleOne:
    """Example 1 of the paper: n = 2, alpha = 0.9."""

    def setup_method(self):
        self.gm = geometric_mechanism(2, 0.9)

    def test_extreme_outputs_dominate_middle_input(self):
        assert self.gm.probability(0, 1) == pytest.approx(0.47, abs=0.005)
        assert self.gm.probability(2, 1) == pytest.approx(0.47, abs=0.005)

    def test_truth_probability_for_middle_input_is_tiny(self):
        assert self.gm.probability(1, 1) == pytest.approx(0.05, abs=0.005)
        ratio = self.gm.probability(0, 1) / self.gm.probability(1, 1)
        assert ratio == pytest.approx(9.0, abs=0.1)  # "eighteen times" for both extremes

    def test_input_zero_reports_truth_more_often(self):
        assert self.gm.probability(0, 0) == pytest.approx(0.53, abs=0.005)
        assert self.gm.probability(0, 0) > self.gm.probability(1, 1)


class TestNoiseSampler:
    def test_noise_pmf_matches_definition(self, rng):
        alpha = 0.6
        samples = two_sided_geometric_noise(alpha, rng=rng, size=200_000)
        for delta in range(-3, 4):
            expected = (1 - alpha) / (1 + alpha) * alpha ** abs(delta)
            observed = np.mean(samples == delta)
            assert observed == pytest.approx(expected, abs=4e-3)

    def test_noise_is_symmetric_in_distribution(self, rng):
        samples = two_sided_geometric_noise(0.8, rng=rng, size=100_000)
        assert np.mean(samples) == pytest.approx(0.0, abs=0.05)

    def test_scalar_sample(self, rng):
        value = two_sided_geometric_noise(0.5, rng=rng)
        assert isinstance(value, int)

    def test_alpha_zero_noise_is_zero(self, rng):
        assert np.all(two_sided_geometric_noise(0.0, rng=rng, size=10) == 0)

    def test_invalid_alpha_rejected(self, rng):
        with pytest.raises(ValueError):
            two_sided_geometric_noise(1.0, rng=rng)


class TestSamplingFormAgreesWithMatrix:
    @pytest.mark.parametrize("true_count", [0, 2, 5])
    def test_empirical_distribution_matches_matrix_column(self, true_count, rng):
        n, alpha = 5, 0.7
        samples = sample_geometric_mechanism(true_count, n, alpha, rng=rng, size=200_000)
        empirical = np.bincount(samples, minlength=n + 1) / samples.size
        expected = geometric_matrix(n, alpha)[:, true_count]
        assert np.allclose(empirical, expected, atol=5e-3)

    def test_scalar_sampling(self, rng):
        value = sample_geometric_mechanism(2, 4, 0.6, rng=rng)
        assert isinstance(value, int)
        assert 0 <= value <= 4

    def test_out_of_range_input_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_geometric_mechanism(9, 4, 0.6, rng=rng)

    def test_alpha_one_has_no_sampling_form(self, rng):
        with pytest.raises(ValueError):
            sample_geometric_mechanism(1, 4, 1.0, rng=rng)
