"""Chaos tests: fault injection across executor, ledger, stream I/O and cache.

Every invariant the crash-safe layer claims is proved here *under injected
failure*, not just on the happy path:

* a killed or hung pool worker's chunks are requeued and the final rows
  equal the serial run exactly, for every worker count, with each chunk's
  budget charged exactly once;
* an unrecoverable pool degrades to in-process sampling without changing
  a byte;
* a `serve-stream --ledger` run killed mid-`.npy`-write or mid-ledger-
  append resumes to output byte-identical to an uninterrupted run, with
  identical `spent_alpha` and no chunk charged twice;
* `DesignCache`'s disk tier is atomic: a crash mid-store never exposes a
  truncated entry;
* exit codes: 1 = budget refusal, 2 = ledger/corruption/config errors.

`TestAmbientChaos` additionally honours an externally set ``REPRO_FAULTS``
(the CI `tests-chaos` leg sweeps pool-kill, torn-tail and I/O-error specs
through it) and asserts the crash→resume loop converges to the reference
output regardless.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.cli import main
from repro.engine import ReleasePlan, StreamExecutor
from repro.engine import faults
from repro.engine.durability import AccountantLedger
from repro.engine.faults import FaultInjector, InjectedCrash
from repro.mechanisms.registry import create_mechanism
from repro.privacy import BudgetExceededError, PrivacyAccountant
from repro.serving import DesignCache


@pytest.fixture
def no_ambient_faults(monkeypatch):
    """Isolate a test from any externally set REPRO_FAULTS sweep."""
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    faults.reset()
    yield
    faults.reset()


def _plan(n: int = 16, alpha: float = 0.9) -> ReleasePlan:
    return ReleasePlan.from_mechanism(create_mechanism("GM", n=n, alpha=alpha))


@pytest.mark.usefixtures("no_ambient_faults")
class TestFaultSpecParsing:
    def test_parse_full_spec(self):
        injector = FaultInjector.parse("kill_worker:3, io_error:0.1, torn_write")
        assert injector.kill_worker == 3
        assert injector.io_error_rate == pytest.approx(0.1)
        assert injector.torn_write == 0
        assert injector.hang_worker is None
        assert injector.active()

    def test_defaults_and_empty(self):
        assert not FaultInjector.parse("").active()
        assert FaultInjector.parse("kill_worker").kill_worker == 0
        assert FaultInjector.parse("io_error").io_error_rate == 1.0
        assert FaultInjector.parse("torn_npy:2").torn_npy == 2
        assert FaultInjector.parse("torn_cache:1").torn_cache == 1
        assert FaultInjector.parse("hang_worker:4").hang_worker == 4

    def test_unknown_fault_is_refused(self):
        with pytest.raises(ValueError, match="unknown fault"):
            FaultInjector.parse("rm_rf_slash")

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "kill_worker:2")
        faults.reset()
        assert faults.get_injector().kill_worker == 2

    def test_io_error_is_deterministic(self):
        a = FaultInjector.parse("io_error:0.4")
        b = FaultInjector.parse("io_error:0.4")
        decisions_a = [a.io_error("site") for _ in range(64)]
        decisions_b = [b.io_error("site") for _ in range(64)]
        assert decisions_a == decisions_b
        assert any(decisions_a) and not all(decisions_a)

    def test_torn_fires_exactly_once_at_kth_call(self):
        injector = FaultInjector.parse("torn_write:2")
        fired = [injector.torn("ledger_append") for _ in range(6)]
        assert fired == [False, False, True, False, False, False]

    def test_kill_only_below_kill_attempts(self):
        injector = FaultInjector(kill_worker=3, kill_attempts=2)
        assert injector.should_kill_worker(3, 0)
        assert injector.should_kill_worker(3, 1)
        assert not injector.should_kill_worker(3, 2)
        assert not injector.should_kill_worker(2, 0)


@pytest.mark.usefixtures("no_ambient_faults")
class TestCacheAtomicity:
    """Satellite: plan-registry stores are single atomic sqlite transactions."""

    def test_crash_mid_store_never_exposes_a_partial_row(self, tmp_path):
        cache = DesignCache(capacity=4, directory=tmp_path)
        with faults.injected("torn_cache"):
            with pytest.raises(InjectedCrash):
                cache.get_or_design(8, 0.9, properties="F")
        # The transaction rolled back before the simulated death: a
        # restarted process sees a clean miss, never a partial row.
        fresh = DesignCache(capacity=4, directory=tmp_path)
        assert len(fresh.registry) == 0
        mechanism, decision = fresh.get_or_design(8, 0.9, properties="F")
        assert decision.n == 8
        assert len(fresh.registry) == 1
        # And the stored entry round-trips for the next process.
        third = DesignCache(capacity=4, directory=tmp_path)
        again, _ = third.get_or_design(8, 0.9, properties="F")
        assert third.stats().disk_hits == 1
        np.testing.assert_array_equal(again.matrix, mechanism.matrix)

    def test_io_error_is_swallowed_and_counted(self, tmp_path):
        cache = DesignCache(capacity=4, directory=tmp_path)
        with faults.injected("io_error:1.0"):
            mechanism, _ = cache.get_or_design(8, 0.9, properties="F")
        assert mechanism is not None  # the design itself must not fail
        assert cache.stats().disk_errors == 1
        assert len(cache.registry) == 0

    def test_successful_store_leaves_only_registry_artifacts(self, tmp_path):
        cache = DesignCache(capacity=4, directory=tmp_path)
        cache.get_or_design(8, 0.9, properties="F")
        leftovers = [
            path.name
            for path in tmp_path.iterdir()
            if not path.name.startswith("registry.sqlite")
        ]
        assert leftovers == []


@pytest.mark.usefixtures("no_ambient_faults")
class TestWorkerFailures:
    """A dead/hung worker's chunks are requeued; rows never change."""

    CHUNK = 50
    COUNTS = np.random.default_rng(77).integers(0, 17, size=400)  # 8 chunks

    def _serial_reference(self):
        return StreamExecutor(_plan(), chunk_size=self.CHUNK).run_seeded(
            self.COUNTS, seed=42
        )

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_killed_worker_requeues_and_rows_equal_serial(self, workers):
        reference = self._serial_reference()
        accountant = PrivacyAccountant(alpha_target=0.9**8)
        executor = StreamExecutor(
            _plan(),
            chunk_size=self.CHUNK,
            accountant=accountant,
            max_workers=workers,
            retry_backoff=0.01,
        )
        with faults.injected(FaultInjector(kill_worker=3)):
            rows = executor.run_seeded(self.COUNTS, seed=42)
        np.testing.assert_array_equal(rows, reference)
        # Every chunk charged exactly once, worker death notwithstanding.
        assert accountant.spent_alpha() == pytest.approx(0.9**8)
        if workers > 1:
            assert executor.stats.requeues > 0
            assert executor.stats.pool_rebuilds >= 1
            assert not executor.stats.degraded

    def test_hung_worker_times_out_and_requeues(self):
        reference = StreamExecutor(_plan(), chunk_size=25).run_seeded(
            self.COUNTS[:100], seed=9
        )
        executor = StreamExecutor(
            _plan(),
            chunk_size=25,
            max_workers=2,
            chunk_timeout=2.0,
            retry_backoff=0.01,
        )
        with faults.injected(FaultInjector(hang_worker=2, hang_seconds=60.0)):
            rows = executor.run_seeded(self.COUNTS[:100], seed=9)
        np.testing.assert_array_equal(rows, reference)
        assert executor.stats.pool_rebuilds >= 1

    def test_unrecoverable_pool_degrades_to_serial(self):
        reference = StreamExecutor(_plan(), chunk_size=25).run_seeded(
            self.COUNTS[:100], seed=9
        )
        executor = StreamExecutor(
            _plan(),
            chunk_size=25,
            max_workers=2,
            max_retries=1,
            retry_backoff=0.01,
        )
        # Chunk 0 dies on its first 10 attempts: retries can never win.
        with faults.injected(FaultInjector(kill_worker=0, kill_attempts=10)):
            rows = executor.run_seeded(self.COUNTS[:100], seed=9)
        np.testing.assert_array_equal(rows, reference)
        assert executor.stats.degraded

    def test_refused_chunk_spends_nothing_even_with_worker_deaths(self):
        # Budget covers exactly 2 of the 4 chunks; chunk 1's worker dies.
        accountant = PrivacyAccountant(alpha_target=0.75)
        executor = StreamExecutor(
            _plan(),
            chunk_size=25,
            accountant=accountant,
            max_workers=2,
            retry_backoff=0.01,
        )
        delivered = []
        with faults.injected(FaultInjector(kill_worker=1)):
            with pytest.raises(BudgetExceededError):
                for chunk in executor.stream_seeded(self.COUNTS[:100], seed=9):
                    delivered.append(chunk)
        # The two charged chunks were delivered despite the death; the
        # refused chunk consumed zero budget (spent is exactly two charges).
        reference = StreamExecutor(_plan(), chunk_size=25).run_seeded(
            self.COUNTS[:100], seed=9
        )
        np.testing.assert_array_equal(np.concatenate(delivered), reference[:50])
        assert accountant.spent_alpha() == pytest.approx(0.9**2)


def _write_counts(tmp_path, total=150, n=16):
    counts = np.random.default_rng(5).integers(0, n + 1, size=total).astype(np.int64)
    path = tmp_path / "counts.npy"
    np.save(path, counts)
    text = tmp_path / "counts.txt"
    text.write_text("\n".join(str(int(v)) for v in counts) + "\n")
    return path, text


def _stream_args(counts_path, output, *, budget=None, ledger=None, resume=False,
                 workers=None, chunk=25, seed=7):
    args = ["serve-stream", "--n", "16", "--alpha", "0.9",
            "--counts-file", str(counts_path), "--chunk-size", str(chunk),
            "--seed", str(seed), "--output", str(output)]
    if budget is not None:
        args += ["--budget-alpha", str(budget)]
    if ledger is not None:
        args += ["--ledger", str(ledger)]
    if resume:
        args += ["--resume"]
    if workers is not None:
        args += ["--max-workers", str(workers)]
    return args


@pytest.mark.usefixtures("no_ambient_faults")
class TestKillAndRestartCLI:
    """serve-stream --ledger --resume: crash anywhere, resume byte-identical."""

    def _reference(self, tmp_path, counts_path, suffix=".npy", budget=None):
        """The uninterrupted seeded-discipline output (no ledger)."""
        ref = tmp_path / f"reference{suffix}"
        code = main(_stream_args(counts_path, ref, workers=1, budget=budget))
        return ref, code

    @pytest.mark.parametrize(
        "spec", ["torn_npy:2", "torn_write:3", "io_error:0.15"]
    )
    def test_crash_and_resume_is_byte_identical_npy(self, tmp_path, capsys, spec):
        counts_path, _ = _write_counts(tmp_path)
        ref, ref_code = self._reference(tmp_path, counts_path)
        assert ref_code == 0
        out = tmp_path / "released.npy"
        ledger = tmp_path / "ledger.bin"
        # The crash: torn .npy chunk write, torn ledger append, or an I/O
        # error — all leave a partial run behind.
        with faults.injected(spec):
            with pytest.raises((InjectedCrash, OSError)):
                main(_stream_args(counts_path, out, budget=0.5, ledger=ledger))
        # The restart (fresh process = fresh injector, no faults).
        code = main(
            _stream_args(counts_path, out, budget=0.5, ledger=ledger, resume=True)
        )
        assert code == 0
        assert out.read_bytes() == ref.read_bytes()
        # Spent budget is exactly the uninterrupted run's: one charge per
        # chunk, none lost, none doubled.
        with AccountantLedger.open(ledger) as replayed:
            assert replayed.spent_alpha() == pytest.approx(0.9**6)
            assert replayed.resume_state().next_chunk == 6
        err = capsys.readouterr()
        assert "chunks resumed from the ledger" in err.out

    def test_crash_and_resume_is_byte_identical_text(self, tmp_path):
        _, text_path = _write_counts(tmp_path)
        ref, ref_code = self._reference(tmp_path, text_path, suffix=".txt")
        assert ref_code == 0
        out = tmp_path / "released.txt"
        ledger = tmp_path / "ledger.bin"
        with faults.injected("torn_write:4"):
            with pytest.raises(InjectedCrash):
                main(_stream_args(text_path, out, budget=0.5, ledger=ledger))
        code = main(
            _stream_args(text_path, out, budget=0.5, ledger=ledger, resume=True)
        )
        assert code == 0
        assert out.read_bytes() == ref.read_bytes()

    def test_uninterrupted_ledger_run_matches_ledgerless_seeded_run(self, tmp_path):
        counts_path, _ = _write_counts(tmp_path)
        ref, _ = self._reference(tmp_path, counts_path)
        out = tmp_path / "released.npy"
        code = main(
            _stream_args(counts_path, out, budget=0.5, ledger=tmp_path / "l.bin")
        )
        assert code == 0
        assert out.read_bytes() == ref.read_bytes()

    def test_budget_refusal_then_resume_refuses_identically(self, tmp_path, capsys):
        counts_path, _ = _write_counts(tmp_path)
        # Budget covers exactly 2 of the 6 chunks.
        ref, ref_code = self._reference(tmp_path, counts_path, budget=0.75)
        assert ref_code == 1
        out = tmp_path / "released.npy"
        ledger = tmp_path / "ledger.bin"
        assert main(_stream_args(counts_path, out, budget=0.75, ledger=ledger)) == 1
        first = out.read_bytes()
        assert first == ref.read_bytes()
        capsys.readouterr()
        # Resuming cannot mint budget: the restarted run refuses exactly
        # the same chunk, charges nothing new, and leaves the output as is.
        code = main(
            _stream_args(counts_path, out, budget=0.75, ledger=ledger, resume=True)
        )
        assert code == 1
        assert "budget exhausted" in capsys.readouterr().err
        assert out.read_bytes() == first
        with AccountantLedger.open(ledger) as replayed:
            assert replayed.spent_alpha() == pytest.approx(0.9**2)

    def test_crash_resume_with_worker_pool_matches_reference(self, tmp_path):
        counts_path, _ = _write_counts(tmp_path)
        ref, _ = self._reference(tmp_path, counts_path)
        out = tmp_path / "released.npy"
        ledger = tmp_path / "ledger.bin"
        with faults.injected("torn_write:5"):
            with pytest.raises(InjectedCrash):
                main(
                    _stream_args(
                        counts_path, out, budget=0.5, ledger=ledger, workers=2
                    )
                )
        code = main(
            _stream_args(
                counts_path, out, budget=0.5, ledger=ledger, resume=True, workers=2
            )
        )
        assert code == 0
        assert out.read_bytes() == ref.read_bytes()


@pytest.mark.usefixtures("no_ambient_faults")
class TestExitCodes:
    """Satellite: budget refusal = 1, ledger/corruption errors = 2."""

    def test_existing_ledger_without_resume_is_exit_2(self, tmp_path, capsys):
        counts_path, _ = _write_counts(tmp_path)
        out = tmp_path / "released.npy"
        ledger = tmp_path / "ledger.bin"
        assert main(_stream_args(counts_path, out, budget=0.5, ledger=ledger)) == 0
        capsys.readouterr()
        assert main(_stream_args(counts_path, out, budget=0.5, ledger=ledger)) == 2
        err = capsys.readouterr().err
        assert "pass --resume" in err

    def test_corrupt_ledger_is_exit_2(self, tmp_path, capsys):
        counts_path, _ = _write_counts(tmp_path)
        out = tmp_path / "released.npy"
        ledger = tmp_path / "ledger.bin"
        assert main(_stream_args(counts_path, out, budget=0.5, ledger=ledger)) == 0
        blob = bytearray(ledger.read_bytes())
        blob[blob.find(b'"label"')] ^= 0xFF
        ledger.write_bytes(bytes(blob))
        capsys.readouterr()
        code = main(
            _stream_args(counts_path, out, budget=0.5, ledger=ledger, resume=True)
        )
        assert code == 2
        assert "ledger error" in capsys.readouterr().err

    def test_mismatched_resume_parameters_are_exit_2(self, tmp_path, capsys):
        counts_path, _ = _write_counts(tmp_path)
        out = tmp_path / "released.npy"
        ledger = tmp_path / "ledger.bin"
        with faults.injected("torn_write:3"):
            with pytest.raises(InjectedCrash):
                main(_stream_args(counts_path, out, budget=0.5, ledger=ledger))
        capsys.readouterr()
        code = main(
            _stream_args(
                counts_path, out, budget=0.5, ledger=ledger, resume=True, chunk=50
            )
        )
        assert code == 2
        assert "chunk_size" in capsys.readouterr().err

    def test_diverged_input_stream_is_exit_2(self, tmp_path, capsys):
        counts_path, _ = _write_counts(tmp_path)
        out = tmp_path / "released.npy"
        ledger = tmp_path / "ledger.bin"
        with faults.injected("torn_write:3"):
            with pytest.raises(InjectedCrash):
                main(_stream_args(counts_path, out, budget=0.5, ledger=ledger))
        # Rewrite the input with different counts: resume must notice.
        counts = np.load(counts_path)
        np.save(counts_path, (counts + 1) % 17)
        capsys.readouterr()
        code = main(
            _stream_args(counts_path, out, budget=0.5, ledger=ledger, resume=True)
        )
        assert code == 2
        assert "diverged" in capsys.readouterr().err

    def test_ledger_flag_validation(self, tmp_path):
        counts_path, _ = _write_counts(tmp_path)
        with pytest.raises(SystemExit, match="budget-alpha"):
            main(["serve-stream", "--n", "16", "--alpha", "0.9",
                  "--counts-file", str(counts_path),
                  "--output", str(tmp_path / "o.npy"),
                  "--ledger", str(tmp_path / "l.bin")])
        with pytest.raises(SystemExit, match="--output"):
            main(["serve-stream", "--n", "16", "--alpha", "0.9",
                  "--counts-file", str(counts_path),
                  "--budget-alpha", "0.5",
                  "--ledger", str(tmp_path / "l.bin")])
        with pytest.raises(SystemExit, match="--ledger"):
            main(["serve-stream", "--n", "16", "--alpha", "0.9",
                  "--counts-file", str(counts_path), "--resume"])

    def test_help_documents_exit_codes(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve-stream", "--help"])
        out = capsys.readouterr().out
        assert "exit status" in out
        assert "privacy budget" in out
        with pytest.raises(SystemExit):
            main(["serve-batch", "--help"])
        assert "exit status" in capsys.readouterr().out

    def test_serve_batch_budget_refusal_is_exit_1(self, tmp_path, capsys):
        counts = tmp_path / "c.txt"
        counts.write_text("1\n2\n3\n")
        with pytest.raises(SystemExit) as excinfo:
            main(["serve-batch", "--n", "8", "--alpha", "0.9",
                  "--counts-file", str(counts), "--budget-alpha", "0.95"])
        # SystemExit with a message string carries exit status 1.
        assert excinfo.value.code not in (0, 2, None)


class TestAmbientChaos:
    """End-to-end pipeline under an externally set REPRO_FAULTS sweep.

    The CI `tests-chaos` leg runs this class under each fault spec; with
    no spec set it degenerates to a clean crash-free run.  A crash is
    answered the way an operator would answer it: restart with --resume
    (the injected fault being transient, the restarted "process" runs
    fault-free).  Whatever the spec, the loop must converge to output
    byte-identical to the fault-free reference with the exact reference
    budget spend.
    """

    def test_pipeline_converges_under_ambient_faults(self, tmp_path, capsys):
        spec = os.environ.get(faults.FAULTS_ENV, "")
        counts_path, _ = _write_counts(tmp_path)
        ref = tmp_path / "reference.npy"
        try:
            faults.install(FaultInjector())  # reference is fault-free
            assert main(_stream_args(counts_path, ref, workers=2)) == 0
            out = tmp_path / "released.npy"
            ledger = tmp_path / "ledger.bin"
            faults.install(FaultInjector.parse(spec))
            code = None
            for _attempt in range(6):
                try:
                    code = main(
                        _stream_args(
                            counts_path, out, budget=0.5, ledger=ledger,
                            resume=True, workers=2,
                        )
                    )
                except (InjectedCrash, OSError):
                    # The "process" died; the restart does not re-hit the
                    # (transient) fault.
                    faults.install(FaultInjector())
                    continue
                break
            assert code == 0
            assert out.read_bytes() == ref.read_bytes()
            with AccountantLedger.open(ledger) as replayed:
                assert replayed.spent_alpha() == pytest.approx(0.9**6)
        finally:
            faults.reset()
