"""Durable-accountant ledger tests: WAL format, recovery, idempotence, resume.

The ledger's contract is exact: a reopened ledger reconstructs *precisely*
the accountant state an uninterrupted run would hold — torn tails (the
signature of a crash mid-``write``) are truncated silently because they
never took effect anywhere, while complete-but-wrong records (checksum or
replay failures — tampering or bitrot, not crashes) are refused loudly.
``charge`` is idempotent by chunk index so a resumed schedule can replay
itself without double-spending, and ``resume_state`` exposes the
contiguous done prefix a restarted ``serve-stream`` picks up from.
"""

from __future__ import annotations

import math
import struct
import zlib

import numpy as np
import pytest

from repro.engine import faults
from repro.engine.durability import (
    AccountantLedger,
    LedgerConfigError,
    LedgerCorruptionError,
    LedgerError,
    ResumeState,
    chunk_crc,
)
from repro.privacy import BudgetExceededError, PrivacyAccountant


@pytest.fixture(autouse=True)
def _no_ambient_faults(monkeypatch):
    """Keep these tests deterministic even under a REPRO_FAULTS sweep."""
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    faults.reset()
    yield
    faults.reset()


class TestLedgerLifecycle:
    def test_fresh_ledger_requires_alpha_target(self, tmp_path):
        with pytest.raises(LedgerError, match="alpha_target"):
            AccountantLedger.open(tmp_path / "ledger.bin")

    def test_charge_and_reopen_reconciles_spent_alpha(self, tmp_path):
        path = tmp_path / "ledger.bin"
        reference = PrivacyAccountant(alpha_target=0.5)
        with AccountantLedger.open(path, alpha_target=0.5) as ledger:
            for chunk in range(4):
                assert ledger.charge(chunk, 0.9, 64, label=f"chunk {chunk}")
                reference.record(0.9, label=f"chunk {chunk}")
        with AccountantLedger.open(path) as reopened:
            assert reopened.spent_alpha() == reference.spent_alpha()
            assert reopened.accountant.alpha_target == 0.5
            assert all(reopened.charged(c) for c in range(4))
            assert not reopened.charged(4)
            # The restarted accountant refuses exactly what the
            # uninterrupted one would.
            assert reopened.accountant.can_release(0.9) == reference.can_release(0.9)

    def test_refused_charge_leaves_no_durable_trace(self, tmp_path):
        path = tmp_path / "ledger.bin"
        with AccountantLedger.open(path, alpha_target=0.8) as ledger:
            assert ledger.charge(0, 0.9, 10)
            size_after_first = path.stat().st_size
            with pytest.raises(BudgetExceededError):
                ledger.charge(1, 0.5, 10)
            assert path.stat().st_size == size_after_first
        with AccountantLedger.open(path) as reopened:
            assert reopened.spent_alpha() == pytest.approx(0.9)
            assert not reopened.charged(1)

    def test_invalid_alpha_refused_like_charge_release(self, tmp_path):
        with AccountantLedger.open(tmp_path / "l.bin", alpha_target=0.5) as ledger:
            for bad in (0.0, -0.1, float("nan"), float("inf"), 1.5):
                with pytest.raises(BudgetExceededError):
                    ledger.charge(0, bad, 10)
            assert not ledger.charged(0)

    def test_config_round_trip(self, tmp_path):
        path = tmp_path / "ledger.bin"
        config = {"n": 8, "chunk_size": 16, "entropy": 987654321}
        AccountantLedger.open(path, alpha_target=0.5, config=config).close()
        with AccountantLedger.open(path, config={"n": 8, "chunk_size": 16}) as ledger:
            # Omitted keys (entropy) are not compared but are readable back.
            assert ledger.config["entropy"] == 987654321


class TestChargeIdempotence:
    def test_replayed_charge_is_detected_not_double_counted(self, tmp_path):
        with AccountantLedger.open(tmp_path / "l.bin", alpha_target=0.5) as ledger:
            assert ledger.charge(0, 0.9, 32, crc=7) is True
            assert ledger.charge(0, 0.9, 32, crc=7) is False
            assert ledger.spent_alpha() == pytest.approx(0.9)

    def test_replay_survives_reopen(self, tmp_path):
        path = tmp_path / "l.bin"
        with AccountantLedger.open(path, alpha_target=0.5) as ledger:
            ledger.charge(0, 0.9, 32, crc=7)
        with AccountantLedger.open(path) as reopened:
            assert reopened.charge(0, 0.9, 32, crc=7) is False
            assert reopened.spent_alpha() == pytest.approx(0.9)

    def test_mismatched_replay_is_corruption(self, tmp_path):
        with AccountantLedger.open(tmp_path / "l.bin", alpha_target=0.5) as ledger:
            ledger.charge(0, 0.9, 32, crc=7)
            with pytest.raises(LedgerCorruptionError, match="does not match"):
                ledger.charge(0, 0.8, 32, crc=7)
            with pytest.raises(LedgerCorruptionError):
                ledger.charge(0, 0.9, 64, crc=7)
            with pytest.raises(LedgerCorruptionError):
                ledger.charge(0, 0.9, 32, crc=8)

    def test_verify_chunk_detects_diverged_input(self, tmp_path):
        counts = np.arange(10)
        with AccountantLedger.open(tmp_path / "l.bin", alpha_target=0.5) as ledger:
            ledger.charge(0, 0.9, 10, crc=chunk_crc(counts))
            ledger.verify_chunk(0, chunk_crc(counts))  # matches: no error
            with pytest.raises(LedgerCorruptionError, match="diverged"):
                ledger.verify_chunk(0, chunk_crc(counts + 1))


class TestRecovery:
    def _ledger_with_charges(self, path, chunks=3):
        ledger = AccountantLedger.open(path, alpha_target=0.5, config={"k": 1})
        for chunk in range(chunks):
            ledger.charge(chunk, 0.95, 16, label=f"chunk {chunk}")
        ledger.close()

    def test_torn_tail_is_truncated(self, tmp_path):
        path = tmp_path / "l.bin"
        self._ledger_with_charges(path)
        intact = path.stat().st_size
        # A crash mid-append leaves a prefix of a record: simulate by
        # appending a record head plus half a payload.
        with path.open("ab") as handle:
            payload = b'{"type": "charge"}'
            handle.write(struct.pack("<II", len(payload), zlib.crc32(payload)))
            handle.write(payload[: len(payload) // 2])
        with AccountantLedger.open(path) as recovered:
            assert recovered.spent_alpha() == pytest.approx(0.95**3)
        assert path.stat().st_size == intact  # tail durably truncated

    def test_torn_head_is_truncated(self, tmp_path):
        path = tmp_path / "l.bin"
        self._ledger_with_charges(path)
        with path.open("ab") as handle:
            handle.write(b"\x05\x00")  # 2 of the 8 head bytes
        with AccountantLedger.open(path) as recovered:
            assert recovered.spent_alpha() == pytest.approx(0.95**3)

    def test_injected_torn_write_recovers_to_consistent_state(self, tmp_path):
        path = tmp_path / "l.bin"
        ledger = AccountantLedger.open(path, alpha_target=0.5)
        ledger.charge(0, 0.95, 16)
        with faults.injected("torn_write:0"):
            with pytest.raises(faults.InjectedCrash):
                ledger.charge(1, 0.95, 16)
        # The torn charge never happened: recovery truncates it away.
        with AccountantLedger.open(path) as recovered:
            assert recovered.spent_alpha() == pytest.approx(0.95)
            assert recovered.charged(0) and not recovered.charged(1)
            # The recovered ledger keeps working.
            assert recovered.charge(1, 0.95, 16)

    def test_corrupt_record_is_refused_loudly(self, tmp_path):
        path = tmp_path / "l.bin"
        self._ledger_with_charges(path)
        blob = bytearray(path.read_bytes())
        blob[blob.find(b'"label"')] ^= 0xFF  # flip one byte inside a payload
        path.write_bytes(bytes(blob))
        with pytest.raises(LedgerCorruptionError, match="checksum"):
            AccountantLedger.open(path)

    def test_insane_length_field_is_corruption(self, tmp_path):
        path = tmp_path / "l.bin"
        self._ledger_with_charges(path)
        with path.open("ab") as handle:
            handle.write(struct.pack("<II", 1 << 30, 0))
        with pytest.raises(LedgerCorruptionError, match="payload bytes"):
            AccountantLedger.open(path)

    def test_io_error_injection_fails_the_append(self, tmp_path):
        ledger = AccountantLedger.open(tmp_path / "l.bin", alpha_target=0.5)
        with faults.injected("io_error:1.0"):
            with pytest.raises(OSError, match="injected"):
                ledger.charge(0, 0.9, 8)
        # Failed append -> no charge, durable or in-memory.
        assert not ledger.charged(0)
        assert ledger.spent_alpha() == 1.0
        assert ledger.charge(0, 0.9, 8)
        ledger.close()

    def test_config_mismatch_is_refused(self, tmp_path):
        path = tmp_path / "l.bin"
        AccountantLedger.open(path, alpha_target=0.5, config={"n": 8}).close()
        with pytest.raises(LedgerConfigError, match="n=8"):
            AccountantLedger.open(path, config={"n": 16})
        with pytest.raises(LedgerConfigError, match="budget"):
            AccountantLedger.open(path, alpha_target=0.25)

    def test_crash_before_header_restarts_clean(self, tmp_path):
        path = tmp_path / "l.bin"
        path.write_bytes(b"\x10\x00")  # torn header write, nothing committed
        with AccountantLedger.open(path, alpha_target=0.5, config={"n": 4}) as ledger:
            assert ledger.spent_alpha() == 1.0
            assert ledger.config == {"n": 4}


class TestResumeState:
    def test_empty_ledger_resumes_from_zero(self, tmp_path):
        with AccountantLedger.open(tmp_path / "l.bin", alpha_target=0.5) as ledger:
            assert ledger.resume_state() == ResumeState(0, 0, None)

    def test_contiguous_done_prefix(self, tmp_path):
        with AccountantLedger.open(tmp_path / "l.bin", alpha_target=0.5) as ledger:
            for chunk in range(3):
                ledger.charge(chunk, 0.95, 16)
            ledger.mark_done(0, 16, 16, 256)
            ledger.mark_done(1, 16, 32, 384)
            # Chunk 2 charged but never served: the crash window.
            state = ledger.resume_state()
            assert state == ResumeState(next_chunk=2, records=32, offset=384)
            assert ledger.is_done(1) and not ledger.is_done(2)

    def test_out_of_order_done_stops_at_the_gap(self, tmp_path):
        with AccountantLedger.open(tmp_path / "l.bin", alpha_target=0.5) as ledger:
            for chunk in range(3):
                ledger.charge(chunk, 0.95, 16)
            ledger.mark_done(0, 16, 16, 256)
            ledger.mark_done(2, 16, 48, 512)
            assert ledger.resume_state().next_chunk == 1

    def test_done_requires_charge(self, tmp_path):
        with AccountantLedger.open(tmp_path / "l.bin", alpha_target=0.5) as ledger:
            with pytest.raises(LedgerError, match="before it is charged"):
                ledger.mark_done(0, 16, 16, 256)

    def test_done_survives_reopen(self, tmp_path):
        path = tmp_path / "l.bin"
        with AccountantLedger.open(path, alpha_target=0.5) as ledger:
            ledger.charge(0, 0.95, 16)
            ledger.mark_done(0, 16, 16, 256)
        with AccountantLedger.open(path) as reopened:
            assert reopened.resume_state() == ResumeState(1, 16, 256)

    def test_done_without_charge_in_log_is_corruption(self, tmp_path):
        path = tmp_path / "l.bin"
        AccountantLedger.open(path, alpha_target=0.5).close()
        payload = b'{"type": "done", "chunk": 0, "size": 1, "records": 1, "offset": 136}'
        with path.open("ab") as handle:
            handle.write(struct.pack("<II", len(payload), zlib.crc32(payload)))
            handle.write(payload)
        with pytest.raises(LedgerCorruptionError, match="never charged"):
            AccountantLedger.open(path)


class TestAccountantFloatEdges:
    """Satellite: float-edge behavior of the accountant the ledger wraps."""

    def test_charge_within_one_ulp_of_remaining_budget(self):
        accountant = PrivacyAccountant(alpha_target=0.25)
        accountant.record(0.5)
        exact = 0.25 / accountant.spent_alpha()
        one_ulp_under = math.nextafter(exact, 0.0)
        assert accountant.can_release(exact)
        # One ulp under the exact remainder is within the 1e-15 tolerance:
        # float rounding must not refuse a mathematically affordable release.
        assert accountant.can_release(one_ulp_under)
        accountant.record(one_ulp_under)
        # ... but a materially over-budget alpha still gets refused.
        with pytest.raises(BudgetExceededError):
            accountant.record(1.0 - 1e-9)

    @pytest.mark.parametrize(
        "bad", [float("nan"), float("inf"), float("-inf"), 0.0, -0.5, 1.0 + 1e-9]
    )
    def test_non_finite_and_out_of_range_alphas_rejected(self, bad):
        accountant = PrivacyAccountant(alpha_target=0.5)
        with pytest.raises(ValueError):
            accountant.record(bad)
        with pytest.raises(ValueError):
            accountant.can_release(bad)
        assert accountant.spent_alpha() == 1.0

    def test_nan_target_rejected(self):
        with pytest.raises(ValueError):
            PrivacyAccountant(alpha_target=float("nan"))

    def test_ledger_replay_preserves_ulp_exact_spend(self, tmp_path):
        path = tmp_path / "l.bin"
        alphas = [0.9, 0.8071, 0.999999999]
        with AccountantLedger.open(path, alpha_target=0.25) as ledger:
            for index, alpha in enumerate(alphas):
                ledger.charge(index, alpha, 8)
            spent = ledger.spent_alpha()
        with AccountantLedger.open(path) as reopened:
            # Bit-exact, not approx: replay composes the same floats in the
            # same order.
            assert reopened.spent_alpha() == spent
