"""Tests for the composition / budget accounting helpers (repro.privacy)."""

from __future__ import annotations

import math

import pytest

from repro.privacy import (
    BudgetExceededError,
    PrivacyAccountant,
    compose_parallel,
    compose_sequential,
    per_release_alpha,
    releases_supported,
)


class TestComposition:
    def test_sequential_multiplies_alphas(self):
        assert compose_sequential([0.9, 0.9]) == pytest.approx(0.81)
        assert compose_sequential([0.5]) == 0.5

    def test_sequential_matches_epsilon_addition(self):
        alphas = [0.9, 0.8, 0.7]
        total = compose_sequential(alphas)
        assert -math.log(total) == pytest.approx(sum(-math.log(a) for a in alphas))

    def test_parallel_takes_the_weakest_release(self):
        assert compose_parallel([0.9, 0.5, 0.7]) == 0.5

    def test_empty_and_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            compose_sequential([])
        with pytest.raises(ValueError):
            compose_parallel([])
        with pytest.raises(ValueError):
            compose_sequential([0.0])
        with pytest.raises(ValueError):
            compose_sequential([1.2])


class TestBudgetArithmetic:
    def test_releases_supported(self):
        # 0.9^6 = 0.531 >= 0.5 but 0.9^7 = 0.478 < 0.5.
        assert releases_supported(0.9, 0.5) == 6

    def test_releases_supported_zero_when_single_release_too_strong(self):
        assert releases_supported(0.3, 0.5) == 0

    def test_releases_supported_rejects_free_releases(self):
        with pytest.raises(ValueError):
            releases_supported(1.0, 0.5)

    def test_per_release_alpha_round_trips(self):
        per_release = per_release_alpha(0.5, 6)
        assert compose_sequential([per_release] * 6) == pytest.approx(0.5)
        assert releases_supported(per_release, 0.5) == 6

    def test_per_release_alpha_validation(self):
        with pytest.raises(ValueError):
            per_release_alpha(0.5, 0)


class TestAccountant:
    def test_records_and_reports_spending(self):
        accountant = PrivacyAccountant(alpha_target=0.5)
        assert accountant.spent_alpha() == 1.0
        accountant.record(0.9, label="week 1")
        accountant.record(0.9, label="week 2")
        assert accountant.spent_alpha() == pytest.approx(0.81)
        assert accountant.spent_epsilon() == pytest.approx(-math.log(0.81))
        assert accountant.history() == [("week 1", 0.9), ("week 2", 0.9)]

    def test_refuses_release_beyond_budget(self):
        accountant = PrivacyAccountant(alpha_target=0.8)
        accountant.record(0.9)
        assert not accountant.can_release(0.5)
        with pytest.raises(BudgetExceededError):
            accountant.record(0.5)
        # The failed attempt must not be recorded.
        assert len(accountant.history()) == 1

    def test_remaining_releases_shrinks_as_budget_is_spent(self):
        accountant = PrivacyAccountant(alpha_target=0.5)
        before = accountant.remaining_releases(0.9)
        accountant.record(0.9)
        after = accountant.remaining_releases(0.9)
        assert before == 6 and after == 5

    def test_remaining_releases_is_zero_once_budget_exhausted(self):
        accountant = PrivacyAccountant(alpha_target=0.25)
        accountant.record(0.5)
        accountant.record(0.5)
        assert accountant.spent_alpha() == pytest.approx(0.25)
        assert accountant.remaining_releases(0.9) == 0
        assert not accountant.can_release(0.9)

    def test_remaining_alpha_never_exceeds_one(self):
        accountant = PrivacyAccountant(alpha_target=0.5)
        assert accountant.remaining_alpha() == pytest.approx(0.5)
        accountant.record(0.7)
        assert accountant.remaining_alpha() == pytest.approx(0.5 / 0.7)

    def test_target_validation(self):
        with pytest.raises(ValueError):
            PrivacyAccountant(alpha_target=0.0)
