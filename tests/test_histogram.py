"""Tests for the histogram / range-query layer (repro.histogram)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.histogram.queries import (
    RangeQuery,
    all_range_queries,
    answer_range_query,
    evaluate_range_queries,
    random_range_queries,
)
from repro.histogram.release import HistogramRelease, PrivateHistogram, released_histogram
from repro.histogram.workloads import categorical_population, histogram_from_items, zipf_weights
from repro.mechanisms.fair import explicit_fair_mechanism
from repro.mechanisms.geometric import geometric_mechanism
from repro.mechanisms.uniform import uniform_mechanism


class TestWorkloads:
    def test_zipf_weights_normalised_and_ordered(self):
        weights = zipf_weights(8, exponent=1.2)
        assert weights.sum() == pytest.approx(1.0)
        assert np.all(np.diff(weights) <= 0)

    def test_zipf_exponent_zero_is_uniform(self):
        assert np.allclose(zipf_weights(5, 0.0), 0.2)

    def test_categorical_population_respects_weights(self, rng):
        weights = [0.7, 0.2, 0.1]
        items = categorical_population(20_000, weights, rng=rng)
        counts = histogram_from_items(items, 3)
        assert counts[0] / 20_000 == pytest.approx(0.7, abs=0.02)

    def test_histogram_from_items_bounds(self):
        with pytest.raises(ValueError):
            histogram_from_items([0, 5], num_buckets=3)
        assert histogram_from_items([0, 0, 2], 4).tolist() == [2, 0, 1, 0]

    def test_invalid_arguments(self, rng):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            categorical_population(10, [0.0, 0.0], rng=rng)
        with pytest.raises(ValueError):
            categorical_population(-1, [1.0], rng=rng)


class TestRangeQueries:
    def test_query_evaluation(self):
        query = RangeQuery(1, 3)
        assert query.width == 3
        assert query.evaluate([5, 1, 2, 3, 9]) == 6

    def test_query_validation(self):
        with pytest.raises(ValueError):
            RangeQuery(3, 1)
        with pytest.raises(ValueError):
            RangeQuery(0, 5).evaluate([1, 2, 3])

    def test_all_range_queries_count(self):
        queries = all_range_queries(4)
        assert len(queries) == 10  # 4 + 3 + 2 + 1
        capped = all_range_queries(4, max_width=1)
        assert len(capped) == 4

    def test_random_range_queries_are_valid(self, rng):
        queries = random_range_queries(6, 50, rng=rng)
        assert len(queries) == 50
        assert all(0 <= q.start <= q.end < 6 for q in queries)


class TestRelease:
    def test_release_shapes_and_types(self, rng):
        release = HistogramRelease(geometric_mechanism, alpha=0.8)
        histogram = release.release([3, 0, 7, 2], rng=rng)
        assert isinstance(histogram, PrivateHistogram)
        assert histogram.num_buckets == 4
        assert histogram.released_counts.min() >= 0
        assert histogram.released_counts.max() <= 7
        assert histogram.mechanism_name == "GM"

    def test_capacity_override_and_validation(self, rng):
        release = HistogramRelease(uniform_mechanism, alpha=0.5)
        histogram = release.release([1, 2], capacity=10, rng=rng)
        assert histogram.released_counts.max() <= 10
        with pytest.raises(ValueError):
            release.release([5], capacity=3, rng=rng)
        with pytest.raises(ValueError):
            release.release([], rng=rng)
        with pytest.raises(ValueError):
            release.release([-1, 2], rng=rng)

    def test_mechanism_cache_reused(self):
        calls = []

        def factory(n, alpha):
            calls.append(n)
            return uniform_mechanism(n, alpha=alpha)

        release = HistogramRelease(factory, alpha=0.7)
        release.mechanism_for(5)
        release.mechanism_for(5)
        release.mechanism_for(6)
        assert calls == [5, 6]

    def test_privacy_accounting(self):
        release = HistogramRelease(geometric_mechanism, alpha=0.8)
        assert release.overall_alpha() == pytest.approx(0.8)
        swap = HistogramRelease(geometric_mechanism, alpha=0.8, neighbouring="swap")
        assert swap.overall_alpha() == pytest.approx(0.64)
        assert swap.overall_epsilon() == pytest.approx(-np.log(0.64))
        with pytest.raises(ValueError):
            HistogramRelease(geometric_mechanism, alpha=0.8, neighbouring="other")
        with pytest.raises(ValueError):
            HistogramRelease(geometric_mechanism, alpha=1.5)

    def test_one_shot_helper(self, rng):
        histogram = released_histogram([4, 4, 4], explicit_fair_mechanism, alpha=0.6, rng=rng)
        assert histogram.num_buckets == 3

    def test_total_variation_error_zero_when_identical(self):
        histogram = PrivateHistogram(
            true_counts=np.array([2, 3]),
            released_counts=np.array([2, 3]),
            alpha=0.5,
            mechanism_name="GM",
        )
        assert histogram.total_variation_error() == 0.0
        assert histogram.per_bucket_error().tolist() == [0, 0]


class TestRangeQueryEvaluation:
    def test_exact_release_has_zero_error(self):
        histogram = PrivateHistogram(
            true_counts=np.array([5, 1, 2, 3]),
            released_counts=np.array([5, 1, 2, 3]),
            alpha=0.5,
            mechanism_name="exact",
        )
        queries = all_range_queries(4)
        summary = evaluate_range_queries(histogram, queries)
        assert summary["mae"] == 0.0
        assert summary["max_error"] == 0.0
        assert answer_range_query(histogram, RangeQuery(0, 3)) == 11

    def test_error_summary_values(self):
        histogram = PrivateHistogram(
            true_counts=np.array([2, 2]),
            released_counts=np.array([3, 1]),
            alpha=0.5,
            mechanism_name="noisy",
        )
        summary = evaluate_range_queries(histogram, all_range_queries(2))
        # Queries: [0,0] error 1, [1,1] error 1, [0,1] error 0.
        assert summary["mae"] == pytest.approx(2.0 / 3.0)
        assert summary["max_error"] == 1.0

    def test_empty_workload_rejected(self):
        histogram = PrivateHistogram(
            true_counts=np.array([1]), released_counts=np.array([1]), alpha=0.5, mechanism_name="x"
        )
        with pytest.raises(ValueError):
            evaluate_range_queries(histogram, [])

    def test_fair_mechanism_release_beats_uniform_on_range_error(self, rng):
        # End-to-end sanity: at a moderate privacy level the EM-based release
        # answers range queries much better than the uniform baseline.
        counts = histogram_from_items(
            categorical_population(1500, zipf_weights(8, 0.8), rng=rng), 8
        )
        queries = all_range_queries(8, max_width=4)
        em_release = HistogramRelease(explicit_fair_mechanism, alpha=0.5)
        um_release = HistogramRelease(uniform_mechanism, alpha=0.5)
        em_error = np.mean(
            [
                evaluate_range_queries(em_release.release(counts, rng=rng), queries)["mae"]
                for _ in range(5)
            ]
        )
        um_error = np.mean(
            [
                evaluate_range_queries(um_release.release(counts, rng=rng), queries)["mae"]
                for _ in range(5)
            ]
        )
        assert em_error < um_error
