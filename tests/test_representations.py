"""Representation-equivalence tests: dense vs closed-form vs sparse.

The refactor's contract is that a mechanism's representation is an
implementation detail: property verdicts, privacy level, losses and — most
strictly — *sampled outputs on a shared uniform stream* must be identical
across the dense, closed-form and sparse backends.  This module proves that
contract over a grid of (n, α) settings for every registry mechanism.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from scipy import sparse

import repro
from repro.core.constraints import build_mechanism_lp
from repro.core.design import design_mechanism, solve_mechanism_lp
from repro.core.losses import Objective, l0_score, l1_score, objective_value, per_input_loss
from repro.core.mechanism import (
    ClosedFormMechanism,
    DenseMechanism,
    Mechanism,
    SparseMechanism,
    _max_alpha_loop,
)
from repro.core.properties import check_all_properties, satisfies_differential_privacy
from repro.core.selector import choose_mechanism
from repro.lp.solver import solve
from repro.mechanisms.registry import (
    CLOSED_FORM_MECHANISMS,
    available_mechanisms,
    create_mechanism,
    is_closed_form,
)

#: (n, alpha) grid for the parity tests: odd/even n, tiny groups, the
#: lemma thresholds (α = 0.5), strong/weak privacy and both degenerations.
PARITY_GRID = [
    (1, 0.0), (1, 0.5), (1, 0.9), (1, 1.0),
    (2, 0.3), (2, 0.62), (2, 1.0),
    (3, 0.5), (3, 0.51), (3, 0.9),
    (4, 0.0), (4, 0.9),
    (7, 0.25), (7, 0.62), (7, 0.99),
    (8, 0.5), (8, 0.91),
    (12, 0.67), (15, 0.99), (16, 0.05),
]

#: Settings where every factory (including LAPLACE/STAIRCASE, which reject
#: α ∈ {0, 1}) can be built.
INTERIOR_GRID = [(n, a) for n, a in PARITY_GRID if 0.0 < a < 1.0]


def _build(name: str, n: int, alpha: float) -> Mechanism:
    if name == "WM":
        return create_mechanism(name, n=n, alpha=alpha, backend="scipy")
    return create_mechanism(name, n=n, alpha=alpha)


def _dense_twin(mechanism: Mechanism) -> Mechanism:
    """A dense mechanism with bit-identical columns to the given one."""
    return DenseMechanism(
        mechanism.matrix.copy(), name=mechanism.name, alpha=mechanism.alpha
    )


def _sparse_twin(mechanism: Mechanism) -> SparseMechanism:
    """A CSC mechanism with bit-identical non-zero columns to the given one."""
    return SparseMechanism(
        sparse.csc_matrix(mechanism.matrix), name=mechanism.name, alpha=mechanism.alpha
    )


class TestClosedFormFactories:
    def test_registry_marks_closed_forms(self):
        assert set(CLOSED_FORM_MECHANISMS) == {"GM", "EM", "UM", "NRR", "STAIRCASE"}
        for name in available_mechanisms():
            assert is_closed_form(name) == (name in CLOSED_FORM_MECHANISMS)

    @pytest.mark.parametrize("name", ["GM", "EM", "UM", "NRR"])
    def test_factories_return_closed_form_without_densifying(self, name):
        before = Mechanism.densifications
        mechanism = _build(name, 64, 0.9)
        assert isinstance(mechanism, ClosedFormMechanism)
        assert mechanism.representation == "closed-form"
        assert not mechanism.is_dense
        assert mechanism.storage_bytes() == 0
        assert Mechanism.densifications == before
        # Touching .matrix is the only thing that materialises it.
        _ = mechanism.matrix
        assert Mechanism.densifications == before + 1
        assert mechanism.storage_bytes() > 0

    @pytest.mark.parametrize("name", ["GM", "EM", "UM", "NRR", "STAIRCASE"])
    @pytest.mark.parametrize("n,alpha", [(5, 0.3), (8, 0.9)])
    def test_interface_matches_matrix(self, name, n, alpha):
        mechanism = _build(name, n, alpha)
        matrix = mechanism.matrix
        for j in range(n + 1):
            assert np.array_equal(mechanism.column(j), matrix[:, j])
        assert np.array_equal(mechanism.diagonal, np.diag(matrix))
        assert mechanism.prob(0, n) == matrix[0, n]
        assert mechanism.trace == pytest.approx(float(np.trace(matrix)))


class TestPropertyParity:
    """All 7 structural properties agree across representations (satellite)."""

    @pytest.mark.parametrize("n,alpha", PARITY_GRID)
    @pytest.mark.parametrize("name", ["GM", "EM", "UM", "NRR"])
    def test_closed_form_and_sparse_agree_with_dense(self, name, n, alpha):
        mechanism = _build(name, n, alpha)
        dense = _dense_twin(mechanism)
        sparse_twin = _sparse_twin(mechanism)
        expected = check_all_properties(dense)
        assert check_all_properties(mechanism) == expected, (name, n, alpha)
        assert check_all_properties(sparse_twin) == expected, (name, n, alpha)

    @pytest.mark.parametrize("n,alpha", INTERIOR_GRID)
    @pytest.mark.parametrize("name", ["STAIRCASE", "EXP", "LAPLACE"])
    def test_remaining_registry_mechanisms_agree(self, name, n, alpha):
        mechanism = _build(name, n, alpha)
        dense = _dense_twin(mechanism)
        expected = check_all_properties(dense)
        assert check_all_properties(mechanism) == expected, (name, n, alpha)
        assert check_all_properties(_sparse_twin(mechanism)) == expected, (name, n, alpha)

    @pytest.mark.parametrize("n,alpha", [(6, 0.9), (8, 0.76)])
    def test_wm_sparse_agrees_with_dense(self, n, alpha):
        lp = build_mechanism_lp(
            n=n, alpha=alpha, properties=repro.parse_properties("WH+CM+RM+S"),
            objective=Objective.l0(),
        )
        solution = solve(lp.program)
        dense = Mechanism(lp.matrix_from_values(solution.values), name="WM")
        sparse_wm = SparseMechanism(lp.sparse_matrix_from_values(solution.values), name="WM")
        assert sparse_wm.nnz <= (n + 1) ** 2
        assert np.allclose(sparse_wm.matrix, dense.matrix, atol=1e-12)
        assert check_all_properties(sparse_wm) == check_all_properties(dense)

    def test_unconstrained_optimum_is_genuinely_sparse(self):
        # The Figure-1 unconstrained L1 design has gaps (zero rows) and
        # spikes: most of the matrix is structurally zero, which is exactly
        # what CSC storage exploits.
        objective = Objective.l1()
        mechanism = design_mechanism(
            8, 0.9, properties=(), objective=objective, representation="sparse"
        )
        assert isinstance(mechanism, SparseMechanism)
        assert mechanism.nnz < 0.5 * mechanism.size**2
        dense = design_mechanism(8, 0.9, properties=(), objective=objective)
        assert mechanism.allclose(dense, tolerance=1e-12)

    @pytest.mark.parametrize("n,alpha", PARITY_GRID)
    @pytest.mark.parametrize("name", ["GM", "EM", "UM", "NRR"])
    def test_max_alpha_and_dp_parity(self, name, n, alpha):
        mechanism = _build(name, n, alpha)
        dense = _dense_twin(mechanism)
        assert mechanism.max_alpha() == pytest.approx(dense.max_alpha(), abs=1e-12)
        probe = min(1.0, mechanism.max_alpha())
        assert satisfies_differential_privacy(mechanism, probe) == (
            satisfies_differential_privacy(dense, probe)
        )


class TestSamplingIdentity:
    """Bit-identical samples on a shared uniform stream (satellite)."""

    @pytest.mark.parametrize("name", ["GM", "EM", "UM", "NRR", "STAIRCASE"])
    @pytest.mark.parametrize("n,alpha", [(12, 0.9), (64, 0.62), (130, 0.3)])
    def test_closed_form_matches_dense_stream(self, name, n, alpha):
        mechanism = _build(name, n, alpha)
        dense = _dense_twin(mechanism)
        counts = np.random.default_rng(3).integers(0, n + 1, size=20_000)
        ours = mechanism.sample_batch(counts, rng=np.random.default_rng(7))
        theirs = dense.sample_batch(counts, rng=np.random.default_rng(7))
        assert np.array_equal(ours, theirs)

    @pytest.mark.parametrize("name", ["GM", "EM"])
    def test_closed_form_matches_dense_stream_n512(self, name):
        n = 512
        mechanism = _build(name, n, 0.95)
        dense = _dense_twin(mechanism)
        counts = np.random.default_rng(1).integers(0, n + 1, size=50_000)
        ours = mechanism.sample_batch(counts, rng=np.random.default_rng(2018))
        theirs = dense.sample_batch(counts, rng=np.random.default_rng(2018))
        assert np.array_equal(ours, theirs)

    @pytest.mark.parametrize("n,alpha", [(9, 0.8), (40, 0.95)])
    def test_sparse_matches_dense_stream(self, n, alpha):
        wm = design_mechanism(n, alpha, properties="WH+CM+S", representation="sparse")
        dense = _dense_twin(wm)
        counts = np.random.default_rng(5).integers(0, n + 1, size=20_000)
        assert np.array_equal(
            wm.sample_batch(counts, rng=np.random.default_rng(11)),
            dense.sample_batch(counts, rng=np.random.default_rng(11)),
        )

    @pytest.mark.parametrize("name", ["GM", "EM", "NRR"])
    def test_scalar_and_batch_interchangeable(self, name):
        mechanism = _build(name, 17, 0.85)
        counts = np.random.default_rng(0).integers(0, 18, size=500)
        batch = mechanism.sample_batch(counts, rng=np.random.default_rng(42))
        rng = np.random.default_rng(42)
        scalar = np.array([mechanism.sample(int(c), rng=rng) for c in counts])
        assert np.array_equal(batch, scalar)

    @pytest.mark.parametrize("name", ["GM", "EM", "UM", "NRR", "STAIRCASE"])
    def test_analytic_inversion_matches_exact_columns(self, name, monkeypatch):
        """The large-n analytic sampler equals the exact column sampler."""
        n, alpha = 600, 0.97
        mechanism = _build(name, n, alpha)
        counts = np.random.default_rng(8).integers(0, n + 1, size=30_000)
        exact = mechanism.sample_batch(counts, rng=np.random.default_rng(13))
        monkeypatch.setattr(ClosedFormMechanism, "EXACT_SAMPLING_LIMIT", 16)
        analytic = _build(name, n, alpha).sample_batch(counts, rng=np.random.default_rng(13))
        assert np.array_equal(exact, analytic)

    def test_large_n_sampling_distribution(self):
        n = 50_000
        gm = repro.geometric_mechanism(n, 0.9)
        before = Mechanism.densifications
        draws = gm.sample_batch(np.full(200_000, n // 2), rng=np.random.default_rng(0))
        assert Mechanism.densifications == before  # no matrix was built
        # Two-sided geometric noise around the true count.
        offsets = draws - n // 2
        assert abs(float(np.mean(offsets))) < 0.1
        expected_zero = (1 - 0.9) / (1 + 0.9)
        assert np.mean(offsets == 0) == pytest.approx(expected_zero, abs=5e-3)


class TestMaxAlphaVectorisation:
    """Satellite: the vectorised max_alpha equals the per-entry loop."""

    def test_matches_loop_on_named_mechanisms(self):
        for name in ("GM", "EM", "UM", "NRR", "EXP", "LAPLACE"):
            mechanism = _build(name, 9, 0.8)
            assert DenseMechanism(mechanism.matrix.copy()).max_alpha() == pytest.approx(
                _max_alpha_loop(mechanism.matrix), abs=0
            ), name

    def test_matches_loop_on_random_and_degenerate_matrices(self):
        rng = np.random.default_rng(2018)
        for trial in range(25):
            raw = rng.random((6, 6)) + 0.01
            if trial % 3 == 0:  # plant zeros to exercise the 0/0 and x/0 branches
                raw[rng.integers(0, 6, size=4), rng.integers(0, 6, size=4)] = 0.0
            matrix = raw / raw.sum(axis=0, keepdims=True)
            mechanism = Mechanism(matrix)
            assert mechanism.max_alpha() == _max_alpha_loop(matrix), trial
        assert Mechanism(np.eye(4)).max_alpha() == _max_alpha_loop(np.eye(4)) == 0.0

    def test_streaming_matches_loop(self):
        wm = design_mechanism(10, 0.9, properties="WH+CM", representation="sparse")
        assert wm.max_alpha() == pytest.approx(_max_alpha_loop(wm.matrix), abs=1e-15)


class TestLossParity:
    @pytest.mark.parametrize("name", ["GM", "EM", "UM", "NRR"])
    def test_losses_never_densify_and_match_dense(self, name):
        mechanism = _build(name, 40, 0.88)
        dense = _dense_twin(mechanism)
        before = Mechanism.densifications
        assert l0_score(mechanism) == pytest.approx(l0_score(dense), abs=1e-12)
        assert l1_score(mechanism) == pytest.approx(l1_score(dense), abs=1e-10)
        assert objective_value(mechanism, Objective.minimax(2.0)) == pytest.approx(
            objective_value(dense, Objective.minimax(2.0)), abs=1e-10
        )
        assert np.allclose(
            per_input_loss(mechanism, Objective.l1()),
            per_input_loss(dense, Objective.l1()),
            atol=1e-10,
        )
        assert Mechanism.densifications == before

    def test_moments_match_dense(self):
        mechanism = repro.explicit_fair_mechanism(33, 0.7)
        dense = _dense_twin(mechanism)
        before = Mechanism.densifications
        assert np.allclose(mechanism.expected_output(), dense.expected_output())
        assert np.allclose(mechanism.output_variance(), dense.output_variance())
        assert np.allclose(mechanism.bias(), dense.bias())
        assert mechanism.truth_probability() == pytest.approx(dense.truth_probability())
        assert Mechanism.densifications == before


class TestSerialisationDescriptors:
    @pytest.mark.parametrize("name", ["GM", "EM", "UM", "NRR", "STAIRCASE"])
    def test_closed_form_round_trip(self, name):
        mechanism = _build(name, 200, 0.9)
        payload = mechanism.to_dict()
        assert payload["representation"] == "closed-form"
        assert "matrix" not in payload
        assert len(mechanism.to_json()) < 2_000  # descriptor, not a dense blob
        clone = Mechanism.from_dict(payload)
        assert isinstance(clone, ClosedFormMechanism)
        assert clone.name == mechanism.name
        assert clone.alpha == mechanism.alpha
        counts = np.arange(0, 201, 7)
        assert np.array_equal(
            clone.sample_batch(counts, rng=np.random.default_rng(3)),
            mechanism.sample_batch(counts, rng=np.random.default_rng(3)),
        )

    def test_sparse_round_trip(self):
        wm = design_mechanism(8, 0.9, properties="WH+CM+S", representation="sparse")
        payload = wm.to_dict()
        assert payload["representation"] == "sparse"
        assert "matrix" not in payload
        clone = Mechanism.from_json(wm.to_json())
        assert isinstance(clone, SparseMechanism)
        assert clone.nnz == wm.nnz
        assert clone.allclose(wm, tolerance=0)

    def test_dense_payloads_still_load(self):
        gm = repro.geometric_mechanism(5, 0.8)
        dense_payload = _dense_twin(gm).to_dict()
        clone = Mechanism.from_dict(dense_payload)
        assert clone.is_dense
        assert clone.allclose(gm)

    def test_closed_form_pickles_via_descriptor(self):
        import pickle

        mechanism = repro.nary_randomized_response(30, 0.7)
        clone = pickle.loads(pickle.dumps(mechanism))
        assert isinstance(clone, ClosedFormMechanism)
        assert clone.allclose(mechanism)


class TestSelectorAndCacheRepresentations:
    def test_selector_explicit_branches_never_build_a_matrix(self):
        before = Mechanism.densifications
        gm, gm_decision = choose_mechanism(4096, 0.9, properties="RM")
        em, em_decision = choose_mechanism(4096, 0.9, properties="F")
        assert (gm_decision.branch, em_decision.branch) == ("GM", "EM")
        assert isinstance(gm, ClosedFormMechanism)
        assert isinstance(em, ClosedFormMechanism)
        assert Mechanism.densifications == before

    def test_selector_wm_branch_returns_sparse(self):
        wm, decision = choose_mechanism(6, 0.9, properties="WH+CM")
        assert decision.branch == "WM[WH+CM]"
        assert isinstance(wm, SparseMechanism)
        assert wm.metadata["representation"] == "sparse"
        dense_wm, _ = choose_mechanism(6, 0.9, properties="WH+CM", representation="dense")
        assert dense_wm.is_dense
        assert wm.allclose(dense_wm, tolerance=1e-12)

    def test_cache_stores_descriptors_not_dense_blobs(self, tmp_path):
        cache = repro.DesignCache(directory=tmp_path)
        cache.get_or_design(500, 0.9, properties="F")
        cache.get_or_design(6, 0.9, properties="WH+CM")
        for path in tmp_path.glob("design-*.json"):
            entry = path.read_text()
            assert len(entry) < 50_000
            assert '"matrix"' not in entry
        # A cold cache rebuilds the right representations from disk.
        cold = repro.DesignCache(directory=tmp_path)
        em, _ = cold.get_or_design(500, 0.9, properties="F")
        wm, _ = cold.get_or_design(6, 0.9, properties="WH+CM")
        assert isinstance(em, ClosedFormMechanism)
        assert isinstance(wm, SparseMechanism)

    def test_session_serves_closed_forms_without_densifying(self):
        session = repro.BatchReleaseSession(rng=np.random.default_rng(0))
        before = Mechanism.densifications
        released = session.release_counts(
            np.random.default_rng(1).integers(0, 5001, size=10_000),
            n=5000,
            alpha=0.9,
            properties="F",
        )
        assert released.shape == (10_000,)
        assert Mechanism.densifications == before


class TestCacheCorruptionRecovery:
    """Satellite: a corrupt registry row is a miss, not an error."""

    def _only_key(self, tmp_path):
        from repro.serving import PlanRegistry

        with_registry = PlanRegistry(tmp_path)
        (key,) = with_registry.keys()
        with_registry.close()
        return key

    def test_corrupted_row_resolves_and_overwrites(self, tmp_path):
        cache = repro.DesignCache(directory=tmp_path)
        cache.get_or_design(4, 0.9, properties="F")
        key = self._only_key(tmp_path)
        cache.registry.corrupt_row(key)  # deliberately bad checksum
        cache.close()

        fresh = repro.DesignCache(directory=tmp_path)
        mechanism, decision = fresh.get_or_design(4, 0.9, properties="F")
        assert mechanism.metadata["design_cache"] == "solve"
        assert decision.branch == "EM"
        assert fresh.stats().misses == 1 and fresh.stats().disk_hits == 0
        assert fresh.stats().corrupt_rows == 1
        fresh.close()
        # The bad row was overwritten: the next cold cache loads it cleanly.
        reloaded, _ = repro.DesignCache(directory=tmp_path).get_or_design(
            4, 0.9, properties="F"
        )
        assert reloaded.metadata["design_cache"] == "disk"

    def test_valid_json_with_broken_schema_is_a_miss(self, tmp_path):
        cache = repro.DesignCache(directory=tmp_path)
        cache.get_or_design(4, 0.9, properties="F")
        key = self._only_key(tmp_path)
        cache.registry.put(key, {"key": key, "mechanism": {"bogus": True}})
        cache.clear()  # drop the memory tier so the bad row is read back
        mechanism, _ = cache.get_or_design(4, 0.9, properties="F")
        assert mechanism.metadata["design_cache"] == "solve"

    def test_unmaterialisable_payload_is_dropped_and_resolved(self, tmp_path):
        cache = repro.DesignCache(directory=tmp_path)
        cache.get_or_design(4, 0.9, properties="F")
        key = self._only_key(tmp_path)
        payload = cache.registry.get(key)
        payload["mechanism"] = {"representation": "closed-form", "factory": "GM"}  # no n
        cache.registry.put(key, payload)
        cache.clear()
        mechanism, _ = cache.get_or_design(4, 0.9, properties="F")
        assert mechanism.metadata["design_cache"] == "solve"
        assert mechanism.name == "EM"
