"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core.mechanism import Mechanism


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_design_arguments(self):
        args = build_parser().parse_args(
            ["design", "--n", "8", "--alpha", "0.9", "--properties", "F"]
        )
        assert args.command == "design"
        assert args.n == 8 and args.alpha == 0.9 and args.properties == "F"


class TestDesignCommand:
    def test_design_prints_profile(self, capsys):
        exit_code = main(["design", "--n", "4", "--alpha", "0.8", "--properties", "WH"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "L0=" in output
        assert "WH=yes" in output

    def test_design_with_selector_reports_branch(self, capsys):
        exit_code = main(
            ["design", "--n", "6", "--alpha", "0.9", "--properties", "F", "--use-selector"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "EM" in output

    def test_design_heatmap_and_matrix(self, capsys):
        main(["design", "--n", "3", "--alpha", "0.7", "--heatmap", "--matrix"])
        output = capsys.readouterr().out
        assert "out  0" in output  # heatmap rows
        assert "i=0" in output  # matrix rows

    def test_design_save_round_trips(self, tmp_path, capsys):
        path = tmp_path / "mechanism.json"
        main(["design", "--n", "4", "--alpha", "0.85", "--properties", "all", "--save", str(path)])
        payload = json.loads(path.read_text())
        mechanism = Mechanism.from_dict(payload)
        assert mechanism.n == 4
        assert "saved mechanism" in capsys.readouterr().out

    def test_design_with_output_alpha(self, capsys):
        exit_code = main(
            ["design", "--n", "4", "--alpha", "0.8", "--output-alpha", "0.8"]
        )
        assert exit_code == 0


class TestCompareCommand:
    def test_compare_table_lists_named_mechanisms(self, capsys):
        exit_code = main(["compare", "--n", "4", "--alpha", "0.9"])
        assert exit_code == 0
        output = capsys.readouterr().out
        for name in ("GM", "WM", "EM", "UM"):
            assert name in output
        assert "truth prob" in output

    def test_compare_with_heatmaps(self, capsys):
        main(["compare", "--n", "3", "--alpha", "0.6", "--heatmap"])
        output = capsys.readouterr().out
        assert output.count("out  0") == 4


class TestReleaseCommand:
    def test_release_inline_counts(self, capsys):
        exit_code = main(
            [
                "release",
                "--mechanism", "EM",
                "--n", "8",
                "--alpha", "0.9",
                "--counts", "3", "5", "2",
                "--seed", "1",
            ]
        )
        assert exit_code == 0
        values = [int(v) for v in capsys.readouterr().out.split()]
        assert len(values) == 3
        assert all(0 <= v <= 8 for v in values)

    def test_release_is_reproducible_with_seed(self, capsys):
        arguments = [
            "release", "--mechanism", "GM", "--n", "6", "--alpha", "0.8",
            "--counts", "1", "2", "3", "--seed", "7",
        ]
        main(arguments)
        first = capsys.readouterr().out
        main(arguments)
        second = capsys.readouterr().out
        assert first == second

    def test_release_from_file_to_file(self, tmp_path, capsys):
        counts_path = tmp_path / "counts.txt"
        counts_path.write_text("0\n4\n8\n")
        output_path = tmp_path / "released.txt"
        main(
            [
                "release", "--mechanism", "UM", "--n", "8", "--alpha", "0.5",
                "--counts-file", str(counts_path),
                "--output", str(output_path),
                "--seed", "3",
            ]
        )
        released = [int(line) for line in output_path.read_text().splitlines()]
        assert len(released) == 3
        assert "wrote 3 released counts" in capsys.readouterr().out

    def test_release_from_saved_mechanism(self, tmp_path, capsys):
        path = tmp_path / "mechanism.json"
        main(["design", "--n", "5", "--alpha", "0.8", "--properties", "F", "--save", str(path)])
        capsys.readouterr()
        main(["release", "--load", str(path), "--counts", "2", "4", "--seed", "0"])
        values = [int(v) for v in capsys.readouterr().out.split()]
        assert len(values) == 2 and all(0 <= v <= 5 for v in values)

    def test_release_validates_inputs(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["release", "--mechanism", "GM", "--counts", "1"])  # missing n/alpha
        with pytest.raises(SystemExit):
            main(["release", "--mechanism", "GM", "--n", "4", "--alpha", "0.5"])  # no counts
        with pytest.raises(SystemExit):
            main(
                ["release", "--mechanism", "GM", "--n", "4", "--alpha", "0.5",
                 "--counts", "9"]
            )  # out of range


class TestExperimentsCommand:
    def test_experiments_subcommand_runs_fast_subset(self, capsys, tmp_path):
        exit_code = main(
            ["experiments", "--fast", "--only", "figure-6", "--csv-dir", str(tmp_path)]
        )
        assert exit_code == 0
        assert (tmp_path / "figure-6.csv").exists()
        assert "figure-6" in capsys.readouterr().out
