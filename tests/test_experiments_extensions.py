"""Tests for the extension experiments (output DP, L1/L2 study, range queries)."""

from __future__ import annotations

import pytest

from repro.experiments import ext_l1_l2_study, ext_output_dp, ext_range_queries


class TestOutputDpExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_output_dp.run(alphas=(0.5, 0.8, 0.9), n=6)

    def test_rows_per_alpha(self, result):
        assert len(result.rows) == 3
        assert {row["alpha"] for row in result.rows} == {0.5, 0.8, 0.9}

    def test_gm_never_satisfies_the_symmetric_requirement(self, result):
        for row in result.rows:
            assert not row["gm_satisfies_output_dp"]
            assert row["gm_output_alpha_measured"] == pytest.approx(
                row["gm_output_alpha_closed_form"]
            )

    def test_em_always_satisfies_it(self, result):
        for row in result.rows:
            assert row["em_output_alpha"] >= row["alpha"] - 1e-9

    def test_cost_sandwiched_between_gm_and_em(self, result):
        for row in result.rows:
            assert row["gm_l0"] - 1e-9 <= row["l0_with_output_dp"] <= row["em_l0"] + 1e-6
            assert row["l0_with_output_dp"] >= row["l0_unconstrained"] - 1e-9
            # Combining all properties with output DP still costs at most EM.
            assert row["l0_all_properties_plus_output_dp"] <= row["em_l0"] + 1e-6

    def test_relative_cost_is_small(self, result):
        # The "no significant loss in utility" message extends to the new
        # constraint: at most a few percent above GM's optimum.
        for row in result.rows:
            assert row["relative_cost_of_output_dp"] <= 1.1


class TestL1L2StudyExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_l1_l2_study.run(group_sizes=(5,))

    def test_grid_shape(self, result):
        # 1 group size x 2 objectives x 5 property-ladder levels.
        assert len(result.rows) == 10

    def test_unconstrained_optima_are_pathological(self, result):
        for row in result.rows:
            if row["properties"] == "unconstrained":
                assert row["has_gap"]

    def test_fully_constrained_optima_are_not(self, result):
        for row in result.rows:
            if row["properties"] == "all seven":
                assert not row["has_gap"]
                assert row["spike_ratio"] < 1.8

    def test_objective_value_grows_along_the_ladder_boundedly(self, result):
        for objective in ("L1 (sum)", "L2 (sum)"):
            ladder = [row for row in result.rows if row["objective"] == objective]
            values = {row["properties"]: row["objective_value"] for row in ladder}
            assert values["unconstrained"] <= values["all seven"] + 1e-9
            # The relative cost of full constraints stays a small factor.
            assert values["all seven"] / values["unconstrained"] < 3.0

    def test_relative_column_recorded(self, result):
        for row in result.rows:
            if row["properties"] == "unconstrained":
                assert row["relative_to_unconstrained"] == pytest.approx(1.0)
            else:
                assert row["relative_to_unconstrained"] >= 1.0 - 1e-9


class TestRangeQueryExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_range_queries.run(
            alphas=(0.67, 0.9),
            num_buckets=12,
            population=1200,
            zipf_exponents=(0.0, 1.0),
            num_queries=40,
            repetitions=5,
            seed=1,
        )

    def test_grid_shape(self, result):
        # 2 skews x 2 alphas x 3 mechanisms.
        assert len(result.rows) == 12

    def test_stronger_privacy_increases_error(self, result):
        for mechanism in ("GM", "EM"):
            for exponent in (0.0, 1.0):
                weak = [
                    row["range_mae"]
                    for row in result.rows
                    if row["mechanism"] == mechanism
                    and row["alpha"] == 0.67
                    and row["zipf_exponent"] == exponent
                ][0]
                strong = [
                    row["range_mae"]
                    for row in result.rows
                    if row["mechanism"] == mechanism
                    and row["alpha"] == 0.9
                    and row["zipf_exponent"] == exponent
                ][0]
                assert strong >= weak - 1e-9

    def test_informative_mechanisms_beat_uniform_guessing(self, result):
        for alpha in (0.67, 0.9):
            for exponent in (0.0, 1.0):
                rows = {
                    row["mechanism"]: row["range_mae"]
                    for row in result.rows
                    if row["alpha"] == alpha and row["zipf_exponent"] == exponent
                }
                assert rows["EM"] < rows["UM"]
                assert rows["GM"] < rows["UM"]

    def test_rows_carry_histogram_error(self, result):
        assert all(row["histogram_tv_error"] >= 0 for row in result.rows)
