"""Unit tests for the pure-NumPy simplex backend (repro.lp.simplex)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lp import simplex


def _empty(n: int):
    return np.zeros((0, n)), np.zeros(0)


class TestStandardFormConversion:
    def test_shift_for_finite_lower_bounds(self):
        c = np.array([1.0, 1.0])
        A_eq = np.array([[1.0, 1.0]])
        b_eq = np.array([5.0])
        standard = simplex.to_standard_form(
            c, *_empty(2), A_eq, b_eq, lower=np.array([2.0, 0.0]), upper=np.array([np.inf, np.inf])
        )
        # The equality right-hand side is shifted by the lower bound of x0.
        assert standard.b[-1] == pytest.approx(3.0)
        recovered = standard.recover(np.array([0.0, 3.0] + [0.0] * (standard.c.size - 2)))
        assert recovered[0] == pytest.approx(2.0)

    def test_free_variables_are_split(self):
        c = np.array([1.0])
        standard = simplex.to_standard_form(
            c, *_empty(1), *_empty(1), lower=np.array([-np.inf]), upper=np.array([np.inf])
        )
        # One free variable becomes two standard-form columns (plus or minus).
        assert standard.positive_part[0] == 0
        assert standard.negative_part[0] == 1
        recovered = standard.recover(np.array([1.0, 4.0]))
        assert recovered[0] == pytest.approx(-3.0)

    def test_upper_bounds_become_rows(self):
        c = np.array([1.0])
        standard = simplex.to_standard_form(
            c, *_empty(1), *_empty(1), lower=np.array([0.0]), upper=np.array([2.0])
        )
        # One <= row plus its slack variable.
        assert standard.A.shape[0] == 1
        assert standard.A.shape[1] == 2

    def test_rhs_made_non_negative(self):
        c = np.array([1.0])
        A_eq = np.array([[1.0]])
        b_eq = np.array([-2.0])
        standard = simplex.to_standard_form(
            c, *_empty(1), A_eq, b_eq, lower=np.array([-np.inf]), upper=np.array([np.inf])
        )
        assert np.all(standard.b >= 0)


class TestSolveStandardForm:
    def test_simple_optimum(self):
        # min -x - y  s.t.  x + y + s = 4, x, y, s >= 0  ->  objective -4.
        c = np.array([-1.0, -1.0, 0.0])
        A = np.array([[1.0, 1.0, 1.0]])
        b = np.array([4.0])
        result = simplex.solve_standard_form(c, A, b)
        assert result.status == "optimal"
        assert result.objective == pytest.approx(-4.0)

    def test_detects_infeasibility(self):
        # x = -1 with x >= 0 is infeasible after the b >= 0 flip (row -x = 1).
        c = np.array([1.0])
        A = np.array([[-1.0]])
        b = np.array([1.0])
        result = simplex.solve_standard_form(c, A, b)
        assert result.status == "infeasible"

    def test_rejects_negative_rhs(self):
        with pytest.raises(ValueError):
            simplex.solve_standard_form(np.array([1.0]), np.array([[1.0]]), np.array([-1.0]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            simplex.solve_standard_form(np.array([1.0, 2.0]), np.array([[1.0]]), np.array([1.0]))


class TestSolveGeneralForm:
    def test_textbook_lp(self):
        # max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  -> optimum 36 at (2, 6).
        c = np.array([-3.0, -5.0])
        A_ub = np.array([[1.0, 0.0], [0.0, 2.0], [3.0, 2.0]])
        b_ub = np.array([4.0, 12.0, 18.0])
        result = simplex.solve_general_form(
            c, A_ub, b_ub, *_empty(2), lower=np.zeros(2), upper=np.full(2, np.inf)
        )
        assert result.status == "optimal"
        assert result.objective == pytest.approx(-36.0)
        assert np.allclose(result.x, [2.0, 6.0], atol=1e-8)

    def test_unbounded_detected(self):
        c = np.array([-1.0])
        result = simplex.solve_general_form(
            c, *_empty(1), *_empty(1), lower=np.zeros(1), upper=np.full(1, np.inf)
        )
        assert result.status == "unbounded"

    def test_infeasible_detected(self):
        c = np.array([1.0])
        A_ub = np.array([[1.0], [-1.0]])
        b_ub = np.array([1.0, -3.0])  # x <= 1 and x >= 3
        result = simplex.solve_general_form(
            c, A_ub, b_ub, *_empty(1), lower=np.zeros(1), upper=np.full(1, np.inf)
        )
        assert result.status == "infeasible"

    def test_equality_constraints_and_bounds(self):
        # min x + 2y s.t. x + y = 3, 0 <= x <= 1, y >= 0  -> x = 1, y = 2.
        c = np.array([1.0, 2.0])
        A_eq = np.array([[1.0, 1.0]])
        b_eq = np.array([3.0])
        result = simplex.solve_general_form(
            c, *_empty(2), A_eq, b_eq, lower=np.zeros(2), upper=np.array([1.0, np.inf])
        )
        assert result.status == "optimal"
        assert np.allclose(result.x, [1.0, 2.0], atol=1e-8)
        assert result.objective == pytest.approx(5.0)

    def test_degenerate_problem_terminates(self):
        # A problem with redundant constraints (classic degeneracy) must still
        # terminate thanks to Bland's rule.
        c = np.array([-1.0, -1.0])
        A_ub = np.array([[1.0, 1.0], [1.0, 1.0], [1.0, 0.0]])
        b_ub = np.array([2.0, 2.0, 1.0])
        result = simplex.solve_general_form(
            c, A_ub, b_ub, *_empty(2), lower=np.zeros(2), upper=np.full(2, np.inf)
        )
        assert result.status == "optimal"
        assert result.objective == pytest.approx(-2.0)

    def test_agrees_with_scipy_on_random_problems(self, rng):
        from scipy import optimize

        for _ in range(10):
            num_vars = int(rng.integers(2, 5))
            num_rows = int(rng.integers(1, 4))
            c = rng.normal(size=num_vars)
            A_ub = rng.normal(size=(num_rows, num_vars))
            # Make the feasible region bounded and non-empty: x in [0, 2]^d.
            b_ub = A_ub @ np.full(num_vars, 1.0) + np.abs(rng.normal(size=num_rows)) + 0.1
            lower = np.zeros(num_vars)
            upper = np.full(num_vars, 2.0)
            ours = simplex.solve_general_form(c, A_ub, b_ub, *_empty(num_vars), lower, upper)
            reference = optimize.linprog(
                c, A_ub=A_ub, b_ub=b_ub, bounds=[(0.0, 2.0)] * num_vars, method="highs"
            )
            assert ours.status == "optimal"
            assert reference.status == 0
            assert ours.objective == pytest.approx(reference.fun, abs=1e-7)


class TestWarmStart:
    """Warm-basis import: skip phase 1 when a neighbouring basis still works."""

    def _program(self, rhs: float):
        # min x + y  s.t.  x + 2y >= rhs, x + y <= 10, x,y >= 0
        c = np.array([1.0, 1.0])
        A_ub = np.array([[-1.0, -2.0], [1.0, 1.0]])
        b_ub = np.array([-rhs, 10.0])
        return c, A_ub, b_ub

    def test_warm_start_reaches_the_same_objective(self):
        c, A_ub, b_ub = self._program(4.0)
        cold = simplex.solve_general_form(
            c, A_ub, b_ub, *_empty(2), lower=np.zeros(2), upper=np.full(2, np.inf)
        )
        assert cold.status == "optimal"
        assert cold.basis is not None
        # A nearby program: same shape, slightly different rhs.
        c2, A2, b2 = self._program(4.5)
        warm = simplex.solve_general_form(
            c2, A2, b2, *_empty(2), lower=np.zeros(2), upper=np.full(2, np.inf),
            warm_basis=cold.basis,
        )
        reference = simplex.solve_general_form(
            c2, A2, b2, *_empty(2), lower=np.zeros(2), upper=np.full(2, np.inf)
        )
        assert warm.status == "optimal"
        assert warm.warm_started
        assert warm.objective == pytest.approx(reference.objective, abs=1e-9)

    def test_stale_basis_falls_back_to_cold(self):
        c, A_ub, b_ub = self._program(4.0)
        cold = simplex.solve_general_form(
            c, A_ub, b_ub, *_empty(2), lower=np.zeros(2), upper=np.full(2, np.inf)
        )
        # Garbage bases of every unusable kind fall through to the cold path.
        for bad in ([0], [0, 0], [0, 99], [-1, 1]):
            result = simplex.solve_general_form(
                c, A_ub, b_ub, *_empty(2), lower=np.zeros(2),
                upper=np.full(2, np.inf), warm_basis=np.asarray(bad, dtype=int),
            )
            assert result.status == "optimal"
            assert not result.warm_started
            assert result.objective == pytest.approx(cold.objective, abs=1e-12)

    def test_infeasible_warm_basis_falls_back(self):
        # Move the rhs far enough that the old optimal basis is no longer
        # primal-feasible; the solve must quietly run two phases instead.
        c, A_ub, b_ub = self._program(1.0)
        cold = simplex.solve_general_form(
            c, A_ub, b_ub, *_empty(2), lower=np.zeros(2), upper=np.full(2, np.inf)
        )
        c2, A2, b2 = self._program(9.9)
        warm = simplex.solve_general_form(
            c2, A2, b2, *_empty(2), lower=np.zeros(2), upper=np.full(2, np.inf),
            warm_basis=cold.basis,
        )
        reference = simplex.solve_general_form(
            c2, A2, b2, *_empty(2), lower=np.zeros(2), upper=np.full(2, np.inf)
        )
        assert warm.status == "optimal"
        assert warm.objective == pytest.approx(reference.objective, abs=1e-9)

    def test_artificial_markers_survive_round_trip(self):
        # A redundant equality row leaves an artificial basic at zero; its
        # marker must re-import as the pinned unit column, not be rejected.
        c = np.array([1.0, 2.0])
        A_eq = np.array([[1.0, 1.0], [2.0, 2.0]])  # second row redundant
        b_eq = np.array([3.0, 6.0])
        cold = simplex.solve_general_form(
            c, np.zeros((0, 2)), np.zeros(0), A_eq, b_eq,
            lower=np.zeros(2), upper=np.full(2, np.inf),
        )
        assert cold.status == "optimal"
        assert cold.basis is not None
        num_cols = 2  # x, y (no slacks; both bounds at 0/inf add nothing)
        assert (cold.basis >= num_cols).sum() >= 1  # the redundant row's marker
        warm = simplex.solve_general_form(
            c, np.zeros((0, 2)), np.zeros(0), A_eq, b_eq,
            lower=np.zeros(2), upper=np.full(2, np.inf), warm_basis=cold.basis,
        )
        assert warm.status == "optimal"
        assert warm.warm_started
        assert warm.iterations == 0  # same program: already optimal
        assert warm.objective == pytest.approx(cold.objective, abs=1e-12)
