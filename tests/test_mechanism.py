"""Unit tests for the Mechanism abstraction (repro.core.mechanism)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mechanism import (
    Mechanism,
    MechanismValidationError,
    empirical_prior,
    uniform_prior,
)
from repro.mechanisms.geometric import geometric_mechanism


class TestValidation:
    def test_rejects_non_square_matrix(self):
        with pytest.raises(MechanismValidationError):
            Mechanism(np.ones((2, 3)) / 2)

    def test_rejects_tiny_matrix(self):
        with pytest.raises(MechanismValidationError):
            Mechanism(np.array([[1.0]]))

    def test_rejects_columns_not_summing_to_one(self):
        matrix = np.array([[0.5, 0.5], [0.4, 0.5]])
        with pytest.raises(MechanismValidationError):
            Mechanism(matrix)

    def test_rejects_negative_entries(self):
        matrix = np.array([[1.2, 0.5], [-0.2, 0.5]])
        with pytest.raises(MechanismValidationError):
            Mechanism(matrix)

    def test_rejects_non_finite_entries(self):
        matrix = np.array([[np.nan, 0.5], [1.0, 0.5]])
        with pytest.raises(MechanismValidationError):
            Mechanism(matrix)

    def test_rejects_alpha_outside_unit_interval(self):
        with pytest.raises(MechanismValidationError):
            Mechanism(np.eye(3), alpha=1.5)

    def test_accepts_valid_matrix(self):
        mechanism = Mechanism(np.full((3, 3), 1.0 / 3.0), name="flat")
        assert mechanism.n == 2
        assert mechanism.size == 3
        assert mechanism.name == "flat"


class TestBasicStructure:
    def test_probabilities_returns_column(self, gm_small):
        column = gm_small.probabilities(2)
        assert column.shape == (5,)
        assert column.sum() == pytest.approx(1.0)
        assert np.allclose(column, gm_small.matrix[:, 2])

    def test_probability_single_entry(self, gm_small):
        assert gm_small.probability(0, 0) == pytest.approx(gm_small.matrix[0, 0])

    def test_count_bounds_enforced(self, gm_small):
        with pytest.raises(ValueError):
            gm_small.probabilities(7)
        with pytest.raises(ValueError):
            gm_small.probability(-1, 0)

    def test_diagonal_and_trace(self, um_small):
        assert np.allclose(um_small.diagonal, 0.2)
        assert um_small.trace == pytest.approx(1.0)


class TestPrivacy:
    def test_max_alpha_matches_design_alpha_for_gm(self):
        for alpha in (0.3, 0.62, 0.9):
            gm = geometric_mechanism(6, alpha)
            assert gm.max_alpha() == pytest.approx(alpha, abs=1e-12)

    def test_identity_mechanism_has_zero_alpha(self):
        identity = Mechanism(np.eye(4))
        assert identity.max_alpha() == 0.0
        assert identity.epsilon() == float("inf")

    def test_uniform_mechanism_alpha_is_one(self, um_small):
        assert um_small.max_alpha() == pytest.approx(1.0)
        assert um_small.epsilon() == pytest.approx(0.0)

    def test_satisfies_dp_thresholds(self, gm_small):
        assert gm_small.satisfies_dp(0.9)
        assert gm_small.satisfies_dp(0.5)
        assert not gm_small.satisfies_dp(0.95)

    def test_satisfies_dp_rejects_bad_alpha(self, gm_small):
        with pytest.raises(ValueError):
            gm_small.satisfies_dp(1.5)


class TestSampling:
    def test_sample_scalar_and_vector(self, gm_small, rng):
        single = gm_small.sample(2, rng=rng)
        assert isinstance(single, int)
        batch = gm_small.sample(2, rng=rng, size=100)
        assert batch.shape == (100,)
        assert batch.min() >= 0 and batch.max() <= gm_small.n

    def test_sample_distribution_matches_matrix(self, em_small, rng):
        draws = em_small.sample(1, rng=rng, size=200_000)
        empirical = np.bincount(draws, minlength=em_small.size) / draws.size
        assert np.allclose(empirical, em_small.probabilities(1), atol=5e-3)

    def test_apply_scalar(self, gm_small, rng):
        assert isinstance(gm_small.apply(3, rng=rng), int)

    def test_apply_batch_preserves_length(self, gm_small, rng):
        counts = np.array([0, 1, 2, 3, 4, 4, 2, 0])
        released = gm_small.apply(counts, rng=rng)
        assert released.shape == counts.shape
        assert released.dtype.kind == "i"

    def test_apply_rejects_matrix_input(self, gm_small, rng):
        with pytest.raises(ValueError):
            gm_small.apply(np.zeros((2, 2), dtype=int), rng=rng)

    def test_deterministic_with_seeded_rng(self, gm_small):
        counts = np.arange(5)
        first = gm_small.apply(counts, rng=np.random.default_rng(7))
        second = gm_small.apply(counts, rng=np.random.default_rng(7))
        assert np.array_equal(first, second)


class TestMoments:
    def test_expected_output_identity(self):
        identity = Mechanism(np.eye(5))
        assert np.allclose(identity.expected_output(), np.arange(5))
        assert identity.expected_output(3) == pytest.approx(3.0)

    def test_variance_of_identity_is_zero(self):
        identity = Mechanism(np.eye(5))
        assert np.allclose(identity.output_variance(), 0.0)
        assert identity.output_variance(2) == pytest.approx(0.0)

    def test_uniform_mechanism_bias(self, um_small):
        # UM's expected output is n/2 = 2 for every input, so bias is 2 - j.
        assert np.allclose(um_small.bias(), 2.0 - np.arange(5))
        assert um_small.bias(0) == pytest.approx(2.0)

    def test_truth_probability_uniform_prior(self, gm_small, em_small):
        # Paper, Section I: for n = 4, alpha = 0.9, GM ~ 0.238 and EM ~ 0.224
        # (we match to within ~2% given the paper's rounding).
        assert gm_small.truth_probability() == pytest.approx(0.238, abs=0.01)
        assert em_small.truth_probability() == pytest.approx(0.224, abs=0.01)
        assert gm_small.truth_probability() > em_small.truth_probability()

    def test_truth_probability_with_custom_prior(self, gm_small):
        prior = np.array([1.0, 0.0, 0.0, 0.0, 0.0])
        assert gm_small.truth_probability(prior) == pytest.approx(gm_small.matrix[0, 0])


class TestTransformations:
    def test_reversed_is_centrosymmetric_reflection(self, gm_small):
        reflected = gm_small.reversed()
        assert np.allclose(reflected.matrix, gm_small.matrix[::-1, ::-1])

    def test_symmetrized_is_symmetric_and_preserves_trace(self, rng):
        # Build an asymmetric but valid mechanism by normalising random noise.
        raw = rng.random((5, 5)) + 0.05
        matrix = raw / raw.sum(axis=0, keepdims=True)
        mechanism = Mechanism(matrix, name="random")
        symmetric = mechanism.symmetrized()
        assert np.allclose(symmetric.matrix, symmetric.matrix[::-1, ::-1])
        assert symmetric.trace == pytest.approx(mechanism.trace)

    def test_allclose(self, gm_small):
        assert gm_small.allclose(geometric_mechanism(4, 0.9))
        assert not gm_small.allclose(geometric_mechanism(4, 0.8))
        assert not gm_small.allclose(geometric_mechanism(5, 0.9))


class TestSerialisationAndRendering:
    def test_round_trip_dict(self, em_small):
        clone = Mechanism.from_dict(em_small.to_dict())
        assert clone.allclose(em_small)
        assert clone.name == em_small.name
        assert clone.alpha == em_small.alpha

    def test_round_trip_json(self, gm_small):
        clone = Mechanism.from_json(gm_small.to_json())
        assert clone.allclose(gm_small)

    def test_render_contains_all_entries(self, um_small):
        text = um_small.render(precision=2)
        assert "0.20" in text
        assert "UM" in text

    def test_heatmap_has_one_line_per_output(self, gm_small):
        text = gm_small.heatmap()
        assert len([line for line in text.splitlines() if line.startswith("i=")]) == gm_small.size


class TestPriors:
    def test_uniform_prior(self):
        prior = uniform_prior(4)
        assert prior.shape == (5,)
        assert prior.sum() == pytest.approx(1.0)
        with pytest.raises(ValueError):
            uniform_prior(0)

    def test_empirical_prior_counts(self):
        prior = empirical_prior([0, 1, 1, 3], n=3)
        assert np.allclose(prior, [0.25, 0.5, 0.0, 0.25])

    def test_empirical_prior_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            empirical_prior([5], n=3)
        with pytest.raises(ValueError):
            empirical_prior([], n=3)
